// Package driver implements the Lambada system core (§3): the driver that
// runs on the data scientist's machine, compiles queries into distributed
// plans, invokes serverless workers (directly or through the two-level
// invocation tree of §4.2), and collects their results through the SQS
// result queue. Workers execute plan fragments against S3 through the
// cost-aware scan operator and report back via shared serverless storage —
// no always-on infrastructure anywhere.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"lambada/internal/awssim/dynamo"
	"lambada/internal/awssim/faults"
	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/invoke"
	"lambada/internal/lpq"
	"lambada/internal/netmodel"
	"lambada/internal/obs"
	"lambada/internal/resilience"
	"lambada/internal/scan"
	"lambada/internal/simclock"
)

// Deployment bundles the serverless services of Figure 3.
type Deployment struct {
	S3     *s3.Service
	Lambda *lambdasvc.Service
	SQS    *sqs.Service
	Dynamo *dynamo.Service
	Meter  *pricing.CostMeter
	Net    netmodel.LambdaNet

	// Deterministic is true for DES deployments: worker-side code must not
	// spawn goroutines, so scan concurrency is disabled (its timing effect
	// is modeled by the bandwidth shaper instead).
	Deterministic bool
	// Shaped enables per-worker bandwidth shaping of S3 transfers.
	Shaped bool
	// Faults is the fault injector shared by every service of a chaos
	// deployment (NewChaos) — held here for reporting injected-fault counts.
	// Nil on fault-free deployments.
	Faults *faults.Injector

	// Trace is the deployment-wide tracer (nil = tracing off). Install it
	// with EnableTracing before any query traffic: every service attributes
	// its billed requests to the span bound to the calling environment, the
	// driver opens query/stage spans, and workers get invocation spans.
	Trace *obs.Tracer
}

// EnableTracing installs tr on the deployment and every service, so billed
// requests, retries and invocations are recorded as a span tree. Call it
// once, before Install and before any traffic; nil disables tracing again.
func (dep *Deployment) EnableTracing(tr *obs.Tracer) {
	dep.Trace = tr
	dep.S3.SetTracer(tr)
	dep.Lambda.SetTracer(tr)
	dep.SQS.SetTracer(tr)
	dep.Dynamo.SetTracer(tr)
}

// NewLocal returns a functional-layer deployment: real goroutine workers,
// zero latencies, no rate limits — correctness testing and examples.
func NewLocal() *Deployment {
	meter := pricing.NewCostMeter()
	return &Deployment{
		S3:     s3.New(s3.Config{Meter: meter}),
		Lambda: lambdasvc.New(lambdasvc.Config{Meter: meter}, &lambdasvc.GoRuntime{}),
		SQS:    sqs.New(sqs.Config{Meter: meter}),
		Dynamo: dynamo.New(dynamo.Config{Meter: meter}),
		Meter:  meter,
		Net:    netmodel.DefaultLambdaNet(),
	}
}

// NewSimulated returns a DES deployment on kernel k with the calibrated AWS
// latency, bandwidth, throttling and pricing models — the performance layer.
func NewSimulated(k *simclock.Kernel, seed int64) *Deployment {
	meter := pricing.NewCostMeter()
	return &Deployment{
		S3:            s3.New(s3.DefaultAWSConfig(meter, seed)),
		Lambda:        lambdasvc.New(lambdasvc.DefaultAWSConfig(meter, seed+1), lambdasvc.SimRuntime{K: k}),
		SQS:           sqs.New(sqs.DefaultAWSConfig(meter, seed+2)),
		Dynamo:        dynamo.New(dynamo.DefaultAWSConfig(meter, seed+3)),
		Meter:         meter,
		Net:           netmodel.DefaultLambdaNet(),
		Deterministic: true,
		Shaped:        true,
	}
}

// NewChaos returns a DES deployment like NewSimulated whose services all
// consult the given fault plan: S3 transient 500s/timeouts/SlowDown storms,
// SQS duplicate and delayed delivery, DynamoDB throttling, Lambda crashes
// and cold-start spikes, every one scheduled deterministically by the plan's
// seed. One injector is shared by all services — operation streams are
// independent per operation name, so the schedules compose without
// interference. A plan with no rules yields a nil injector, making the
// deployment trace-identical to NewSimulated(k, seed).
func NewChaos(k *simclock.Kernel, seed int64, plan faults.Plan) *Deployment {
	meter := pricing.NewCostMeter()
	inj := faults.NewInjector(plan)
	s3cfg := s3.DefaultAWSConfig(meter, seed)
	s3cfg.Faults = inj
	lcfg := lambdasvc.DefaultAWSConfig(meter, seed+1)
	lcfg.Faults = inj
	qcfg := sqs.DefaultAWSConfig(meter, seed+2)
	qcfg.Faults = inj
	dcfg := dynamo.DefaultAWSConfig(meter, seed+3)
	dcfg.Faults = inj
	return &Deployment{
		S3:            s3.New(s3cfg),
		Lambda:        lambdasvc.New(lcfg, lambdasvc.SimRuntime{K: k}),
		SQS:           sqs.New(qcfg),
		Dynamo:        dynamo.New(dcfg),
		Meter:         meter,
		Net:           netmodel.DefaultLambdaNet(),
		Deterministic: true,
		Shaped:        true,
		Faults:        inj,
	}
}

// Config tunes a Lambada installation.
type Config struct {
	// FunctionName is the worker Lambda function name.
	FunctionName string
	// WorkerMemoryMiB is M of §5.2 (default 1792: exactly one vCPU).
	WorkerMemoryMiB int
	// FilesPerWorker is F of §5.2; the worker count is
	// ceil(len(files)/F) unless Workers overrides it.
	FilesPerWorker int
	// Workers pins the worker count (0 = derive from FilesPerWorker).
	Workers int
	// TreeInvoke enables the two-level invocation tree (§4.2).
	TreeInvoke bool
	// InvokeThreads is the driver's requester thread count for pacing.
	InvokeThreads int
	// Region selects the Table 1 invocation profile.
	Region netmodel.Region
	// Scan configures the S3 scan operator.
	Scan scan.Config
	// PipelineParallelism is the number of morsel-pipeline goroutines the
	// worker-side engine fans scan chunks out to (0 = GOMAXPROCS, 1 =
	// serial). Forced to 1 in deterministic (DES) deployments, where
	// worker code must not spawn goroutines.
	PipelineParallelism int
	// Timeout is the worker function timeout.
	Timeout time.Duration
	// ResultQueue names the SQS result queue.
	ResultQueue string
	// PollInterval is the driver's result poll interval.
	PollInterval time.Duration
	// MaxWait bounds result collection.
	MaxWait time.Duration
	// Speculate configures driver-side straggler mitigation.
	Speculate SpeculateConfig
	// RetryBudget caps substrate retries per scope — the driver side of one
	// query, or one worker invocation. 0 means the default of 256; negative
	// means unlimited. A worker that exhausts its budget posts a typed
	// retryable failure seal so the scheduler can re-invoke the fragment.
	RetryBudget int
	// EpochTTL bounds the lifetime of epoch fence items in the staging
	// table; the driver lazily sweeps expired items when acquiring epochs.
	// Must comfortably exceed the function timeout so a live query's fence
	// is never collected. 0 means 24 hours of virtual time.
	EpochTTL time.Duration
	// EpochGCInterval is the number of epoch acquisitions between lazy
	// sweeps of expired fence items (0 = every 64th).
	EpochGCInterval int
	// MaxInFlight, when positive, caps the deployment-wide number of
	// concurrently running worker containers across every query of the
	// session: queries acquire invocation tokens from one shared admission
	// controller (invoke.Admission) before launching, and each settling
	// container releases one. It replaces per-query DriverPacing as the
	// launch governor — the shared pacer splits the region's Invoke API
	// rate across concurrent queries. 0 keeps the legacy per-query pacing
	// with no concurrency cap.
	MaxInFlight int
	// ResultCacheEntries, when positive, enables the session's result
	// cache: staged query results are memoized by (plan fingerprint, table
	// files) and invalidated explicitly (InvalidateTable) or implicitly by
	// UploadTable. 0 disables caching.
	ResultCacheEntries int

	// testWorkerDelay, when set by tests, stalls the given invocation
	// before it executes its fragment — the straggler-injection seam.
	// Stage is 0 for single-scope queries; attempt 0 is the original
	// invocation, higher attempts are speculation backups.
	testWorkerDelay func(stage, workerID, attempt int) time.Duration
}

// DefaultConfig mirrors the paper's default setup (M=1792, F=1).
func DefaultConfig() Config {
	return Config{
		FunctionName:    "lambada-worker",
		WorkerMemoryMiB: 1792,
		FilesPerWorker:  1,
		TreeInvoke:      true,
		InvokeThreads:   1,
		Region:          netmodel.RegionEU,
		Scan:            scan.DefaultConfig(),
		Timeout:         5 * time.Minute,
		ResultQueue:     "lambada-results",
		PollInterval:    25 * time.Millisecond,
		MaxWait:         10 * time.Minute,
	}
}

// Driver is the classic single-user façade over a Session: one resident
// session plus one bound environment, serving one query at a time. All the
// machinery lives in Session — Driver only forwards, so every pre-session
// caller and test keeps working unchanged while multi-query users hold the
// Session directly.
type Driver struct {
	sess *Session
	env  simenv.Env

	// dep and cfg mirror the session's deployment and normalized config so
	// existing tests that reach into driver internals keep compiling.
	dep *Deployment
	cfg Config
}

// retryScope bundles the retry machinery of one execution scope — the
// driver side of one query, or one worker invocation: a policy with
// deterministic backoff jitter, the scope's retry budget, and a stats
// counter surfaced in the Report.
type retryScope struct {
	policy resilience.Policy
	budget *resilience.Budget
	stats  *resilience.Stats
}

// New returns a driver using env as its local clock.
func New(dep *Deployment, env simenv.Env, cfg Config) *Driver {
	s := NewSession(dep, cfg)
	return &Driver{sess: s, env: env, dep: dep, cfg: s.cfg}
}

// Config returns the driver's configuration.
func (d *Driver) Config() Config { return d.cfg }

// Deployment returns the bound deployment.
func (d *Driver) Deployment() *Deployment { return d.dep }

// Session returns the resident session the driver fronts.
func (d *Driver) Session() *Session { return d.sess }

// Install registers the worker function and creates the result queue —
// the installation step of the usage model (Figure 2), done once.
func (d *Driver) Install() error { return d.sess.Install() }

// workerPayload is the invocation parameter blob (§3.3).
type workerPayload struct {
	QueryID     string            `json:"queryId"`
	WorkerID    int               `json:"workerId"`
	NumWorkers  int               `json:"numWorkers"`
	Plan        json.RawMessage   `json:"plan"`
	Table       string            `json:"table"`
	Files       []scan.FileRef    `json:"files"`
	ResultQueue string            `json:"resultQueue"`
	Children    []json.RawMessage `json:"children,omitempty"`
	// Exchange, when present, makes the worker shuffle its partial result
	// through S3 by group key and finalize its partitions locally.
	Exchange json.RawMessage `json:"exchange,omitempty"`
	// StageID and StageSpec mark a stage fragment of a stage-decomposed
	// plan (internal/stageplan): the worker collects its exchange inputs,
	// executes the fragment, and either publishes its partitioned output
	// or posts it to the result queue.
	StageID   int             `json:"stageId,omitempty"`
	StageSpec json.RawMessage `json:"stageSpec,omitempty"`
	// Regroup marks a plan-less regroup invocation of a multi-level stage
	// boundary (driver/regroup.go): the worker merges one partition group
	// across all senders and republishes it per partition, posting a bare
	// seal when done.
	Regroup json.RawMessage `json:"regroup,omitempty"`
	// Attempt versions this invocation: 0 is the original, higher numbers
	// are speculation backups for the same (stage, worker). Stage boundary
	// publishes are namespaced by it so backups never race originals.
	Attempt int `json:"attempt,omitempty"`
	// Epoch is the query's fence token (staged runs): the driver durably
	// increments it in DynamoDB at query start, every artifact the worker
	// produces — seal message, boundary prefix — carries it, and artifacts
	// of an older epoch are discarded. A zombie worker of an aborted
	// identically-numbered run is structurally unable to satisfy this run's
	// barriers, no matter when it wakes. 0 for single-scope queries.
	Epoch int `json:"epoch,omitempty"`
	// Broadcast carries small driver-side tables (lpq blobs by table name)
	// referenced by join plans.
	Broadcast map[string][]byte `json:"broadcast,omitempty"`
}

// resultMsg is the worker → driver completion message.
type resultMsg struct {
	QueryID  string `json:"queryId"`
	WorkerID int    `json:"workerId"`
	Stage    int    `json:"stage,omitempty"`   // stage fragment's stage ID
	Attempt  int    `json:"attempt,omitempty"` // invocation attempt number
	Epoch    int    `json:"epoch,omitempty"`   // query epoch fence token
	Err      string `json:"err,omitempty"`
	// Retryable marks a failure as transient — the worker died of exhausted
	// retries or an injected crash-class error, not of a plan or data error
	// — so the scheduler may re-invoke the fragment instead of failing the
	// query.
	Retryable    bool   `json:"retryable,omitempty"`
	Retries      int64  `json:"retries,omitempty"` // substrate retries spent by this invocation
	Chunk        []byte `json:"chunk,omitempty"`   // lpq blob
	ProcessingNs int64  `json:"processingNs"`      // plan execution time
	Cold         bool   `json:"cold"`
}

// workerHandler is the event handler running inside every serverless
// worker: invoke children (tree), execute the plan fragment, post to SQS.
// It hangs off the Session, not a query: workers of every concurrent query
// share one installed function, and everything query-specific travels in
// the payload (queryID, epoch, result queue).
func (d *Session) workerHandler(ctx *lambdasvc.Ctx, payload []byte) error {
	var p workerPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return err
	}
	// Per-invocation retry scope: every substrate call the worker makes
	// draws on this one budget, so a fault storm cannot keep a single
	// invocation retrying forever — it degrades into a retryable failure
	// seal the scheduler can act on.
	ws := d.newRetryScope(int64(p.StageID)<<32 + int64(p.WorkerID)<<8 + int64(p.Attempt) + 1)

	// Identify this invocation's span: queryID/stage/attempt tags turn the
	// flat invocation list into the query → stage → attempt taxonomy.
	if tr := d.dep.Trace; tr.Enabled() && ctx.Span != 0 {
		tr.SetTag(ctx.Span, "query", p.QueryID)
		if p.StageID != 0 || len(p.StageSpec) > 0 {
			tr.SetTag(ctx.Span, "stage", strconv.Itoa(p.StageID))
		}
		if p.Attempt > 0 {
			tr.SetTag(ctx.Span, "attempt", strconv.Itoa(p.Attempt))
		}
	}

	// First-generation workers launch their children before their own
	// fragment (§4.2).
	if len(p.Children) > 0 {
		pacing := invoke.WorkerPacing(d.cfg.Region)
		for _, ch := range p.Children {
			var cp workerPayload
			if err := json.Unmarshal(ch, &cp); err != nil {
				d.postResult(ctx.Env, ws, p, fmt.Errorf("decoding child payload: %w", err), nil, 0, ctx.Cold)
				return err
			}
			body := ch
			if err := ws.policy.Do(ctx.Env, "lambda.Invoke", func() error {
				return d.dep.Lambda.Invoke(ctx.Env, d.cfg.FunctionName, body, lambdasvc.InvokeOptions{WorkerID: cp.WorkerID, Pipelined: true, Span: ctx.Span})
			}); err != nil {
				d.postResult(ctx.Env, ws, p, fmt.Errorf("invoking child %d: %w", cp.WorkerID, err), nil, 0, ctx.Cold)
				return err
			}
			ctx.Env.Sleep(pacing.Gap())
		}
	}

	if d.cfg.testWorkerDelay != nil {
		ctx.Env.Sleep(d.cfg.testWorkerDelay(p.StageID, p.WorkerID, p.Attempt))
	}
	start := ctx.Env.Now()
	chunk, err := d.executeFragment(ctx, ws, &p)
	processing := ctx.Env.Now() - start
	return d.postResult(ctx.Env, ws, p, err, chunk, processing, ctx.Cold)
}

// ErrWorkerOOM is reported when a worker's working set exceeds its memory.
var ErrWorkerOOM = errors.New("worker out of memory")

// memGuardSource wraps a scan source and fails with an out-of-memory error
// when a materialized chunk exceeds the execution-engine budget. §3.3: the
// handler "starts the execution engine ... with a memory limit slightly
// lower than that of the serverless function such that it can report
// out-of-memory situations ... rather than dying silently".
type memGuardSource struct {
	engine.Source
	budget int64
}

func (m memGuardSource) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	return m.Source.Scan(proj, preds, m.guard(yield))
}

// ScanFiltered forwards late-materialized scans to the wrapped source
// (memGuardSource must re-implement the interface: embedding engine.Source
// hides whether the dynamic value is filterable). When it isn't, fall back
// to a full scan filtered here so pipelines that skipped their filter stage
// still see filtered chunks.
func (m memGuardSource) ScanFiltered(proj []string, preds []lpq.Predicate, filter engine.Expr, yield func(*columnar.Chunk) error) error {
	if fs, ok := m.Source.(engine.FilterableSource); ok {
		return fs.ScanFiltered(proj, preds, filter, m.guard(yield))
	}
	var sel []int
	return m.Source.Scan(proj, preds, m.guard(func(c *columnar.Chunk) error {
		var err error
		sel, err = engine.FilterSelection(c, filter, sel)
		if err != nil {
			return err
		}
		if len(sel) == 0 {
			return nil
		}
		if len(sel) == c.NumRows() {
			return yield(c)
		}
		return yield(c.Gather(sel))
	}))
}

// guard wraps yield with the working-set budget check.
func (m memGuardSource) guard(yield func(*columnar.Chunk) error) func(*columnar.Chunk) error {
	return func(c *columnar.Chunk) error {
		// The scan pipeline holds the decoded chunk plus the compressed
		// download buffers and the double-buffered next group; budget 3×.
		if need := 3 * c.ByteSize(); need > m.budget {
			return fmt.Errorf("%w: chunk working set %d MiB exceeds engine budget %d MiB",
				ErrWorkerOOM, need>>20, m.budget>>20)
		}
		return yield(c)
	}
}

var _ engine.FilterableSource = memGuardSource{}

// engineMemoryBudget returns the execution-engine limit: the function's
// memory minus a fixed headroom for the handler and runtime.
func engineMemoryBudget(memoryMiB int) int64 {
	const headroomMiB = 192
	b := int64(memoryMiB-headroomMiB) << 20
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

func (d *Session) executeFragment(ctx *lambdasvc.Ctx, ws *retryScope, p *workerPayload) (*columnar.Chunk, error) {
	opts := []s3.ClientOption{s3.WithBudget(ws.budget)}
	if d.dep.Shaped {
		opts = append(opts, s3.WithShaper(d.dep.Net, ctx.MemoryMiB))
	}
	client := s3.NewClient(d.dep.S3, ctx.Env, opts...)
	defer func() { ws.stats.Add(client.Retries()) }()
	// Regroup invocations carry no plan fragment at all: the whole task is
	// the intermediate round of a multi-level boundary.
	if len(p.Regroup) > 0 {
		return nil, d.runRegroup(ctx, ws, client, p)
	}
	plan, err := engine.UnmarshalPlan(p.Plan)
	if err != nil {
		return nil, err
	}
	cat := engine.Catalog{}
	if len(p.Files) > 0 {
		src := scan.New(client, d.cfg.Scan, p.Files...)
		cat[p.Table] = memGuardSource{Source: src, budget: engineMemoryBudget(ctx.MemoryMiB)}
	}
	for name, blob := range p.Broadcast {
		r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			return nil, fmt.Errorf("decoding broadcast table %q: %w", name, err)
		}
		c, err := r.ReadAll()
		if err != nil {
			return nil, err
		}
		cat[name] = engine.NewMemSource(c.Schema, c)
	}
	// Stage fragments collect their exchange inputs before executing and
	// publish their partitioned output after (driver/stage.go).
	if len(p.StageSpec) > 0 {
		return d.runStageFragment(ctx, ws, client, p, plan, cat)
	}
	// Every fragment — joins included — runs on the pipeline-graph
	// scheduler; parallelism 1 (forced in DES deployments) executes the
	// whole graph inline without spawning goroutines.
	partial, err := engine.ExecuteParallel(plan, cat, engine.ParallelConfig{Pipelines: d.cfg.PipelineParallelism})
	if err != nil {
		return nil, err
	}
	if len(p.Exchange) == 0 {
		return partial, nil
	}
	return d.runExchange(client, p, partial)
}

func (d *Session) postResult(env simenv.Env, ws *retryScope, p workerPayload, execErr error, chunk *columnar.Chunk, processing time.Duration, cold bool) error {
	msg := resultMsg{QueryID: p.QueryID, WorkerID: p.WorkerID, Stage: p.StageID, Attempt: p.Attempt, Epoch: p.Epoch, ProcessingNs: processing.Nanoseconds(), Cold: cold}
	if execErr != nil {
		msg.Err = execErr.Error()
		// A retryable failure is a typed failure seal: the scheduler may
		// re-invoke the fragment through the attempt machinery instead of
		// failing the query.
		msg.Retryable = resilience.Retryable(execErr)
	} else if chunk != nil {
		blob, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, chunk)
		if err != nil {
			msg.Err = err.Error()
		} else {
			msg.Chunk = blob
		}
	}
	msg.Retries = ws.stats.Retries()
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	// The completion message is the worker's last word — losing it to a
	// transient SQS error would strand the whole query, so it retries too.
	// It goes to the payload's queue, not a session-wide one: each query
	// collects on its own result queue, so concurrent queries never read
	// (and destroy) each other's completions.
	return ws.policy.Do(env, "sqs.Send", func() error {
		return d.dep.SQS.Send(env, p.ResultQueue, body)
	})
}
