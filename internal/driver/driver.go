// Package driver implements the Lambada system core (§3): the driver that
// runs on the data scientist's machine, compiles queries into distributed
// plans, invokes serverless workers (directly or through the two-level
// invocation tree of §4.2), and collects their results through the SQS
// result queue. Workers execute plan fragments against S3 through the
// cost-aware scan operator and report back via shared serverless storage —
// no always-on infrastructure anywhere.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"lambada/internal/awssim/dynamo"
	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/invoke"
	"lambada/internal/lpq"
	"lambada/internal/netmodel"
	"lambada/internal/scan"
	"lambada/internal/simclock"
)

// Deployment bundles the serverless services of Figure 3.
type Deployment struct {
	S3     *s3.Service
	Lambda *lambdasvc.Service
	SQS    *sqs.Service
	Dynamo *dynamo.Service
	Meter  *pricing.CostMeter
	Net    netmodel.LambdaNet

	// Deterministic is true for DES deployments: worker-side code must not
	// spawn goroutines, so scan concurrency is disabled (its timing effect
	// is modeled by the bandwidth shaper instead).
	Deterministic bool
	// Shaped enables per-worker bandwidth shaping of S3 transfers.
	Shaped bool
}

// NewLocal returns a functional-layer deployment: real goroutine workers,
// zero latencies, no rate limits — correctness testing and examples.
func NewLocal() *Deployment {
	meter := pricing.NewCostMeter()
	return &Deployment{
		S3:     s3.New(s3.Config{Meter: meter}),
		Lambda: lambdasvc.New(lambdasvc.Config{Meter: meter}, &lambdasvc.GoRuntime{}),
		SQS:    sqs.New(sqs.Config{Meter: meter}),
		Dynamo: dynamo.New(dynamo.Config{Meter: meter}),
		Meter:  meter,
		Net:    netmodel.DefaultLambdaNet(),
	}
}

// NewSimulated returns a DES deployment on kernel k with the calibrated AWS
// latency, bandwidth, throttling and pricing models — the performance layer.
func NewSimulated(k *simclock.Kernel, seed int64) *Deployment {
	meter := pricing.NewCostMeter()
	return &Deployment{
		S3:            s3.New(s3.DefaultAWSConfig(meter, seed)),
		Lambda:        lambdasvc.New(lambdasvc.DefaultAWSConfig(meter, seed+1), lambdasvc.SimRuntime{K: k}),
		SQS:           sqs.New(sqs.DefaultAWSConfig(meter, seed+2)),
		Dynamo:        dynamo.New(dynamo.DefaultAWSConfig(meter, seed+3)),
		Meter:         meter,
		Net:           netmodel.DefaultLambdaNet(),
		Deterministic: true,
		Shaped:        true,
	}
}

// Config tunes a Lambada installation.
type Config struct {
	// FunctionName is the worker Lambda function name.
	FunctionName string
	// WorkerMemoryMiB is M of §5.2 (default 1792: exactly one vCPU).
	WorkerMemoryMiB int
	// FilesPerWorker is F of §5.2; the worker count is
	// ceil(len(files)/F) unless Workers overrides it.
	FilesPerWorker int
	// Workers pins the worker count (0 = derive from FilesPerWorker).
	Workers int
	// TreeInvoke enables the two-level invocation tree (§4.2).
	TreeInvoke bool
	// InvokeThreads is the driver's requester thread count for pacing.
	InvokeThreads int
	// Region selects the Table 1 invocation profile.
	Region netmodel.Region
	// Scan configures the S3 scan operator.
	Scan scan.Config
	// PipelineParallelism is the number of morsel-pipeline goroutines the
	// worker-side engine fans scan chunks out to (0 = GOMAXPROCS, 1 =
	// serial). Forced to 1 in deterministic (DES) deployments, where
	// worker code must not spawn goroutines.
	PipelineParallelism int
	// Timeout is the worker function timeout.
	Timeout time.Duration
	// ResultQueue names the SQS result queue.
	ResultQueue string
	// PollInterval is the driver's result poll interval.
	PollInterval time.Duration
	// MaxWait bounds result collection.
	MaxWait time.Duration
	// Speculate configures driver-side straggler mitigation.
	Speculate SpeculateConfig

	// testWorkerDelay, when set by tests, stalls the given invocation
	// before it executes its fragment — the straggler-injection seam.
	// Stage is 0 for single-scope queries; attempt 0 is the original
	// invocation, higher attempts are speculation backups.
	testWorkerDelay func(stage, workerID, attempt int) time.Duration
}

// DefaultConfig mirrors the paper's default setup (M=1792, F=1).
func DefaultConfig() Config {
	return Config{
		FunctionName:    "lambada-worker",
		WorkerMemoryMiB: 1792,
		FilesPerWorker:  1,
		TreeInvoke:      true,
		InvokeThreads:   1,
		Region:          netmodel.RegionEU,
		Scan:            scan.DefaultConfig(),
		Timeout:         5 * time.Minute,
		ResultQueue:     "lambada-results",
		PollInterval:    25 * time.Millisecond,
		MaxWait:         10 * time.Minute,
	}
}

// Driver is a Lambada driver instance bound to one deployment.
type Driver struct {
	dep *Deployment
	cfg Config
	env simenv.Env

	queryCounter int
}

// New returns a driver using env as its local clock.
func New(dep *Deployment, env simenv.Env, cfg Config) *Driver {
	if cfg.FunctionName == "" {
		cfg.FunctionName = "lambada-worker"
	}
	if cfg.ResultQueue == "" {
		cfg.ResultQueue = "lambada-results"
	}
	if cfg.WorkerMemoryMiB == 0 {
		cfg.WorkerMemoryMiB = 1792
	}
	if cfg.FilesPerWorker == 0 {
		cfg.FilesPerWorker = 1
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 10 * time.Minute
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.Region == "" {
		cfg.Region = netmodel.RegionEU
	}
	if dep.Deterministic {
		// DES processes must stay single-threaded; the shaper models the
		// timing effect of scan concurrency instead.
		cfg.Scan.DoubleBuffer = false
		cfg.Scan.ParallelColumns = false
		cfg.Scan.MetaPrefetch = false
		cfg.Scan.ParallelFiles = 1
		cfg.PipelineParallelism = 1
	}
	return &Driver{dep: dep, cfg: cfg, env: env}
}

// Config returns the driver's configuration.
func (d *Driver) Config() Config { return d.cfg }

// Deployment returns the bound deployment.
func (d *Driver) Deployment() *Deployment { return d.dep }

// Install registers the worker function and creates the result queue —
// the installation step of the usage model (Figure 2), done once.
func (d *Driver) Install() error {
	d.dep.SQS.CreateQueue(d.cfg.ResultQueue)
	return d.dep.Lambda.CreateFunction(d.cfg.FunctionName, d.cfg.WorkerMemoryMiB, d.cfg.Timeout, d.workerHandler)
}

// workerPayload is the invocation parameter blob (§3.3).
type workerPayload struct {
	QueryID     string            `json:"queryId"`
	WorkerID    int               `json:"workerId"`
	NumWorkers  int               `json:"numWorkers"`
	Plan        json.RawMessage   `json:"plan"`
	Table       string            `json:"table"`
	Files       []scan.FileRef    `json:"files"`
	ResultQueue string            `json:"resultQueue"`
	Children    []json.RawMessage `json:"children,omitempty"`
	// Exchange, when present, makes the worker shuffle its partial result
	// through S3 by group key and finalize its partitions locally.
	Exchange json.RawMessage `json:"exchange,omitempty"`
	// StageID and StageSpec mark a stage fragment of a stage-decomposed
	// plan (internal/stageplan): the worker collects its exchange inputs,
	// executes the fragment, and either publishes its partitioned output
	// or posts it to the result queue.
	StageID   int             `json:"stageId,omitempty"`
	StageSpec json.RawMessage `json:"stageSpec,omitempty"`
	// Attempt versions this invocation: 0 is the original, higher numbers
	// are speculation backups for the same (stage, worker). Stage boundary
	// publishes are namespaced by it so backups never race originals.
	Attempt int `json:"attempt,omitempty"`
	// Epoch is the query's fence token (staged runs): the driver durably
	// increments it in DynamoDB at query start, every artifact the worker
	// produces — seal message, boundary prefix — carries it, and artifacts
	// of an older epoch are discarded. A zombie worker of an aborted
	// identically-numbered run is structurally unable to satisfy this run's
	// barriers, no matter when it wakes. 0 for single-scope queries.
	Epoch int `json:"epoch,omitempty"`
	// Broadcast carries small driver-side tables (lpq blobs by table name)
	// referenced by join plans.
	Broadcast map[string][]byte `json:"broadcast,omitempty"`
}

// resultMsg is the worker → driver completion message.
type resultMsg struct {
	QueryID      string `json:"queryId"`
	WorkerID     int    `json:"workerId"`
	Stage        int    `json:"stage,omitempty"`   // stage fragment's stage ID
	Attempt      int    `json:"attempt,omitempty"` // invocation attempt number
	Epoch        int    `json:"epoch,omitempty"`   // query epoch fence token
	Err          string `json:"err,omitempty"`
	Chunk        []byte `json:"chunk,omitempty"` // lpq blob
	ProcessingNs int64  `json:"processingNs"`    // plan execution time
	Cold         bool   `json:"cold"`
}

// workerHandler is the event handler running inside every serverless
// worker: invoke children (tree), execute the plan fragment, post to SQS.
func (d *Driver) workerHandler(ctx *lambdasvc.Ctx, payload []byte) error {
	var p workerPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return err
	}

	// First-generation workers launch their children before their own
	// fragment (§4.2).
	if len(p.Children) > 0 {
		pacing := invoke.WorkerPacing(d.cfg.Region)
		for _, ch := range p.Children {
			var cp workerPayload
			if err := json.Unmarshal(ch, &cp); err != nil {
				d.postResult(ctx.Env, p, fmt.Errorf("decoding child payload: %w", err), nil, 0, ctx.Cold)
				return err
			}
			if err := d.dep.Lambda.Invoke(ctx.Env, d.cfg.FunctionName, ch, lambdasvc.InvokeOptions{WorkerID: cp.WorkerID, Pipelined: true}); err != nil {
				d.postResult(ctx.Env, p, fmt.Errorf("invoking child %d: %w", cp.WorkerID, err), nil, 0, ctx.Cold)
				return err
			}
			ctx.Env.Sleep(pacing.Gap())
		}
	}

	if d.cfg.testWorkerDelay != nil {
		ctx.Env.Sleep(d.cfg.testWorkerDelay(p.StageID, p.WorkerID, p.Attempt))
	}
	start := ctx.Env.Now()
	chunk, err := d.executeFragment(ctx, &p)
	processing := ctx.Env.Now() - start
	return d.postResult(ctx.Env, p, err, chunk, processing, ctx.Cold)
}

// ErrWorkerOOM is reported when a worker's working set exceeds its memory.
var ErrWorkerOOM = errors.New("worker out of memory")

// memGuardSource wraps a scan source and fails with an out-of-memory error
// when a materialized chunk exceeds the execution-engine budget. §3.3: the
// handler "starts the execution engine ... with a memory limit slightly
// lower than that of the serverless function such that it can report
// out-of-memory situations ... rather than dying silently".
type memGuardSource struct {
	engine.Source
	budget int64
}

func (m memGuardSource) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	return m.Source.Scan(proj, preds, func(c *columnar.Chunk) error {
		// The scan pipeline holds the decoded chunk plus the compressed
		// download buffers and the double-buffered next group; budget 3×.
		if need := 3 * c.ByteSize(); need > m.budget {
			return fmt.Errorf("%w: chunk working set %d MiB exceeds engine budget %d MiB",
				ErrWorkerOOM, need>>20, m.budget>>20)
		}
		return yield(c)
	})
}

// engineMemoryBudget returns the execution-engine limit: the function's
// memory minus a fixed headroom for the handler and runtime.
func engineMemoryBudget(memoryMiB int) int64 {
	const headroomMiB = 192
	b := int64(memoryMiB-headroomMiB) << 20
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

func (d *Driver) executeFragment(ctx *lambdasvc.Ctx, p *workerPayload) (*columnar.Chunk, error) {
	plan, err := engine.UnmarshalPlan(p.Plan)
	if err != nil {
		return nil, err
	}
	opts := []s3.ClientOption{}
	if d.dep.Shaped {
		opts = append(opts, s3.WithShaper(d.dep.Net, ctx.MemoryMiB))
	}
	client := s3.NewClient(d.dep.S3, ctx.Env, opts...)
	cat := engine.Catalog{}
	if len(p.Files) > 0 {
		src := scan.New(client, d.cfg.Scan, p.Files...)
		cat[p.Table] = memGuardSource{Source: src, budget: engineMemoryBudget(ctx.MemoryMiB)}
	}
	for name, blob := range p.Broadcast {
		r, err := lpq.OpenReader(bytes.NewReader(blob), int64(len(blob)))
		if err != nil {
			return nil, fmt.Errorf("decoding broadcast table %q: %w", name, err)
		}
		c, err := r.ReadAll()
		if err != nil {
			return nil, err
		}
		cat[name] = engine.NewMemSource(c.Schema, c)
	}
	// Stage fragments collect their exchange inputs before executing and
	// publish their partitioned output after (driver/stage.go).
	if len(p.StageSpec) > 0 {
		return d.runStageFragment(ctx, client, p, plan, cat)
	}
	// Every fragment — joins included — runs on the pipeline-graph
	// scheduler; parallelism 1 (forced in DES deployments) executes the
	// whole graph inline without spawning goroutines.
	partial, err := engine.ExecuteParallel(plan, cat, engine.ParallelConfig{Pipelines: d.cfg.PipelineParallelism})
	if err != nil {
		return nil, err
	}
	if len(p.Exchange) == 0 {
		return partial, nil
	}
	return d.runExchange(client, p, partial)
}

func (d *Driver) postResult(env simenv.Env, p workerPayload, execErr error, chunk *columnar.Chunk, processing time.Duration, cold bool) error {
	msg := resultMsg{QueryID: p.QueryID, WorkerID: p.WorkerID, Stage: p.StageID, Attempt: p.Attempt, Epoch: p.Epoch, ProcessingNs: processing.Nanoseconds(), Cold: cold}
	if execErr != nil {
		msg.Err = execErr.Error()
	} else if chunk != nil {
		blob, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, chunk)
		if err != nil {
			msg.Err = err.Error()
		} else {
			msg.Chunk = blob
		}
	}
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	return d.dep.SQS.Send(env, d.cfg.ResultQueue, body)
}
