package driver

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"lambada/internal/awssim/dynamo"
	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/invoke"
	"lambada/internal/lpq"
	"lambada/internal/obs"
	"lambada/internal/scan"
	"lambada/internal/stageplan"
)

// StageConfig tunes the staged (shuffle) execution path: the stage planner
// (internal/stageplan) decomposes the query into a DAG of stages connected
// by exchange boundaries, and the driver runs the DAG on an event-driven
// stage scheduler with seal/ready barriers and attempt-versioned
// boundaries.
type StageConfig struct {
	// Exchange configures the S3 boundary namespace (buckets, variant,
	// receiver polling).
	Exchange ExchangeConfig
	// Partitions is the fan-in of every boundary — join stages and final
	// aggregation stages run this many workers. 0 autotunes the fan-in from
	// the lpq footer row counts (stageplan.AutoRowsPerPartition rows per
	// partition, at most stageplan.MaxAutoPartitions).
	Partitions int
	// BroadcastRowLimit: a join build side of at most this many rows (per
	// the lpq file footers) is loaded by the driver and broadcast inside
	// worker payloads instead of shuffled (0 = stageplan's default;
	// negative = never broadcast).
	BroadcastRowLimit int64
	// Pipelined launches eager stages the moment the query starts — before
	// their producers seal — overlapping worker cold starts with upstream
	// execution; the DynamoDB ready barrier gates each worker's collect.
	// False restores wave-gated launch: a stage is invoked only once every
	// producer sealed (the pre-PR 4 behavior, kept for comparison).
	Pipelined bool
	// MaxStageWait is the no-progress liveness cap: under speculation, a
	// runnable stage (producers sealed) that goes this long without ANY
	// worker response — the window restarts on every response — has its
	// whole missing set re-invoked as the next attempt. This covers the
	// cases the quorum/median policy can never arm for: no response at all,
	// and a sub-quorum stall. stageplan.Stage.MaxStageWait overrides it per
	// stage; 0 disables the cap (the pre-PR 5 behavior).
	MaxStageWait time.Duration
	// ExchangeLevels forces every stage boundary's round count: 1 pins
	// single-round, 2 pins the multi-level boundary (one intermediate
	// regrouping round, §4.4.2). 0 — the default — resolves each boundary
	// from the analytic request model (stageplan.ChooseVariant) once the
	// sender fleet size is known: large fleets go multi-level automatically,
	// small ones stay single-round. Write combining is inherited from
	// Exchange.Variant.WriteCombining either way.
	ExchangeLevels int
	// MaxAutoPartitions caps the autotuned boundary fan-in
	// (0 = stageplan.MaxAutoPartitions). Paper-scale fleets raise it: with
	// multi-level boundaries the boundary request count grows as O(√P·S)
	// instead of O(S·P), so wide fan-ins stay affordable.
	MaxAutoPartitions int
}

// DefaultStageConfig shuffles through the write-combining exchange with
// pipelined stage launch, autotuned partition counts, and a one-minute
// all-stragglers cap.
func DefaultStageConfig() StageConfig {
	return StageConfig{Exchange: DefaultExchangeConfig(), Pipelined: true, MaxStageWait: time.Minute}
}

// TableFiles maps each base table of a query to its lpq files on S3.
type TableFiles map[string][]scan.FileRef

// stageSpec is the runtime wire form of one stage, shipped inside worker
// payloads next to the plan fragment.
type stageSpec struct {
	StageID int               `json:"stageId"`
	Inputs  []stageInputSpec  `json:"inputs,omitempty"`
	Output  *stageplan.Output `json:"output,omitempty"`

	// Variant is the fallback boundary algorithm, used only when an input or
	// the output carries no resolved variant of its own (the driver resolves
	// every boundary before payload build, so in practice it is the
	// single-round base the resolution started from).
	Variant   exchange.Variant `json:"variant"`
	Buckets   []string         `json:"buckets"`
	Prefix    string           `json:"prefix"`
	PollNs    int64            `json:"pollNs"`
	MaxWaitNs int64            `json:"maxWaitNs"`
	// SealTable is the DynamoDB table holding per-stage ready markers;
	// QueryID and Epoch scope the marker keys (an older epoch's markers can
	// never satisfy this epoch's barrier).
	SealTable string `json:"sealTable"`
	QueryID   string `json:"queryId"`
	Epoch     int    `json:"epoch"`
}

// stageInputSpec is the planner's Input plus the runtime sender count and
// the resolved boundary variant.
type stageInputSpec struct {
	stageplan.Input
	// Senders is the producing stage's worker count.
	Senders int `json:"senders"`
	// Variant is the producing boundary's resolved exchange algorithm; the
	// collector must read with the same variant the senders wrote with.
	Variant exchange.Variant `json:"inVariant"`
	// RegroupStage, for multi-level boundaries, is the synthetic regroup
	// fleet's stage ID: the consumer's ready barrier waits on ITS seal (the
	// round-2 objects exist only once every regroup worker committed), not
	// the producer's.
	RegroupStage int `json:"regroupStage,omitempty"`
}

// stagesTableName names the DynamoDB seal/ready table of an installation.
func stagesTableName(fn string) string { return fn + "-stages" }

// sealKey names a stage's ready marker; the epoch segment fences markers of
// an aborted identically-numbered run out of this run's barrier.
func sealKey(queryID string, epoch, stageID int) string {
	return fmt.Sprintf("%s/e%d/s%d", queryID, epoch, stageID)
}

// epochKey names the durable per-query epoch item in the stages table.
func epochKey(queryID string) string { return "epoch/" + queryID }

// acquireEpoch durably fences this run of queryID: it atomically increments
// the query's epoch item with a conditional Put, so two drivers reusing the
// same query ID (a fresh driver on the same deployment restarts query
// numbering) always land in distinct epochs, and the older run's in-flight
// workers are structurally unable to satisfy the newer run's barriers —
// their seals, ready markers and boundary files all carry the losing epoch.
// The uniqueness source is the durable counter itself (no wall clock, no
// randomness), so DES runs stay deterministic.
func (d *query) acquireEpoch(table, queryID string) (int, error) {
	if d.s.bumpEpochAcquires() {
		d.sweepEpochs(table)
	}
	key := epochKey(queryID)
	for {
		var cur []byte
		err := d.retry.policy.Do(d.env, "dynamo.Get", func() error {
			var gerr error
			cur, gerr = d.dep.Dynamo.Get(d.env, table, key)
			return gerr
		})
		if err != nil {
			if !errors.Is(err, dynamo.ErrNoSuchItem) {
				return 0, err
			}
			cur = nil
		}
		next := 1
		if cur != nil {
			prev, _, ok := parseEpochValue(cur)
			if !ok {
				return 0, fmt.Errorf("driver: corrupt epoch item %s/%s: %q", table, key, cur)
			}
			next = prev + 1
		}
		val := []byte(fmt.Sprintf("%d@%d", next, int64(d.env.Now())))
		putErr := d.retry.policy.Do(d.env, "dynamo.PutIf", func() error {
			return d.dep.Dynamo.PutIf(d.env, table, key, val, cur)
		})
		if putErr == nil {
			return next, nil
		}
		if !errors.Is(putErr, dynamo.ErrConditionFailed) {
			return 0, putErr
		}
		// Lost the increment race to a concurrent driver: re-read, go again.
	}
}

// parseEpochValue decodes an epoch item: "<epoch>@<writtenAtNs>" since the
// TTL sweep was introduced, a bare integer before it. The timestamp is the
// virtual write instant, used only to age items out (legacy items read as
// written at time zero, so they age out first).
func parseEpochValue(v []byte) (epoch int, at int64, ok bool) {
	s := string(v)
	if i := strings.IndexByte(s, '@'); i >= 0 {
		e, err1 := strconv.Atoi(s[:i])
		a, err2 := strconv.ParseInt(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil {
			return 0, 0, false
		}
		return e, a, true
	}
	e, err := strconv.Atoi(s)
	if err != nil {
		return 0, 0, false
	}
	return e, 0, true
}

// sweepEpochs lazily deletes expired epoch fence items — without it the
// stages table accumulates one item per query ID ever run on the
// deployment. An item expires once EpochTTL of virtual time passed since
// its last increment; the TTL must exceed the function timeout, so no
// worker of a fenced run can still be alive when its fence goes. Best
// effort: errors are ignored (the next sweep retries), and the
// delete/re-acquire race is safe — acquireEpoch's conditional Put with a
// non-nil expect fails on a missing item and re-reads.
func (d *query) sweepEpochs(table string) {
	items, err := d.dep.Dynamo.Scan(d.env, table, "epoch/")
	if err != nil {
		return
	}
	cutoff := int64(d.env.Now()) - int64(d.cfg.EpochTTL)
	for _, it := range items {
		if _, at, ok := parseEpochValue(it.Value); ok && at < cutoff {
			d.dep.Dynamo.Delete(d.env, table, it.Key)
		}
	}
}

// StageFailure is the structured terminal error of a staged query: a worker
// posted a failure seal the scheduler could not — or must not — retry away.
// Retryable distinguishes an exhausted relaunch budget (transient causes,
// crash-class errors, spent retry budgets) from a deterministic plan or
// data error that no relaunch would fix.
type StageFailure struct {
	QueryID   string
	Stage     int
	Worker    int
	Attempt   int
	Retryable bool
	Msg       string
}

func (e *StageFailure) Error() string {
	return fmt.Sprintf("driver: stage %d worker %d failed: %s", e.Stage, e.Worker, e.Msg)
}

// RunSQLStaged parses a SQL query over any number of S3-backed tables and
// executes it through the stage planner: joins shuffle through the exchange
// when both sides are large (per-join broadcast-vs-shuffle choice from the
// lpq footer row counts), grouped aggregations repartition on their group
// keys, and the driver only merges the final stage's outputs.
func (d *Driver) RunSQLStaged(sql string, tables TableFiles, cfg StageConfig) (*columnar.Chunk, *Report, error) {
	return d.sess.RunSQLStaged(d.env, sql, tables, cfg)
}

// stageState tracks one stage through the event-driven scheduler.
type stageState int

const (
	stagePending  stageState = iota // not yet invoked
	stageLaunched                   // fleet invoked, seals outstanding
	stageSealed                     // every worker sealed, ready marker written
)

// stageRun is the scheduler's bookkeeping for one stage of one query.
type stageRun struct {
	st       *stageplan.Stage
	payloads []workerPayload // attempt-0 payloads, one per worker
	state    stageState
	// bodies are the marshaled attempt-0 payloads, built on first launch.
	bodies [][]byte
	// launched counts workers invoked so far: always the full fleet after
	// one launch() in legacy mode, possibly a prefix under admission (the
	// scheduler launches as many as TryAcquire grants and resumes from the
	// cursor on later passes).
	launched int

	launchedAt time.Duration
	sealedAt   time.Duration
	// winners records, per worker, the attempt whose seal arrived first.
	// Later seals of the same worker — the losing half of a backup pair —
	// are ignored; their boundary files are swept after the query.
	winners    map[int]int
	policy     stragglerPolicy
	speculated int
	// span is the stage's trace span (0 when tracing is off): opened at
	// payload build, re-timed to the launch instant, ended at the seal.
	span obs.SpanID
	// boundary is the stage's output-boundary variant as resolved by the
	// driver (zero for the result stage); regroup runs carry the boundary
	// they regroup.
	boundary exchange.Variant
	// regroup marks a synthetic regroup fleet (multi-level boundaries);
	// regroupFor is then the producing stage whose boundary it regroups.
	regroup    bool
	regroupFor int
}

// RunPlanStaged optimizes plan against the tables' footer schemas,
// decomposes it into a stage DAG, and runs it on the event-driven stage
// scheduler: the driver first fences the run with a durable query epoch
// (an atomic DynamoDB increment stamped into every payload, seal, ready
// marker and boundary prefix, so leftovers — at rest or still in flight —
// of an aborted identically-numbered run are structurally discarded), then
// invokes every eager stage up front (pipelined launch — consumer cold
// starts overlap upstream execution), workers report completion through the
// SQS result queue (seal), the driver records stage readiness in DynamoDB
// (the notify-driven barrier gating consumer collects), and
// Config.Speculate re-invokes any stage's stragglers as attempt-versioned
// backups whose boundary publishes cannot race the originals' — the first
// sealed attempt per worker wins, and the stale-drain collector sweeps the
// boundary namespace afterwards.
func (d *Driver) RunPlanStaged(plan engine.Plan, tables TableFiles, cfg StageConfig) (*columnar.Chunk, *Report, error) {
	return d.sess.RunPlanStaged(d.env, plan, tables, cfg)
}

// runPlanStaged is the per-query scheduler instance: the whole staged state
// machine runs on the query's private result queue and retry scope, so N of
// these can interleave on one session, isolated by queryID+epoch and
// queue-level routing.
func (d *query) runPlanStaged(plan engine.Plan, tables TableFiles, cfg StageConfig) (*columnar.Chunk, *Report, error) {
	if len(tables) == 0 {
		return nil, nil, fmt.Errorf("driver: no input tables")
	}
	queryID := d.id

	costBefore := d.costSnapshot()
	startTime := d.env.Now()

	// Query span: root of the span tree. Bound to the driver environment so
	// every driver-side billed request — schema reads, the epoch fence,
	// sweeps, invokes, seal polling — lands in op spans beneath it; the
	// deferred Release closes any still-open driver-side span on error
	// paths. Registered before the boundary-sweep defer below, so the
	// error-path sweep's requests are still attributed (defers run LIFO).
	tr := d.dep.Trace
	var qspan obs.SpanID
	if tr.Enabled() {
		qspan = tr.StartSpan(obs.KindQuery, queryID, 0, startTime)
		tr.Bind(d.env, qspan)
		defer func() { tr.Release(d.env, d.env.Now()) }()
	}

	// Resolve every table's schema from its lpq footers — driver-side
	// metadata reads only.
	driverClient := s3.NewClient(d.dep.S3, d.env)
	optCat := engine.Catalog{}
	srcs := map[string]*scan.Source{}
	for name, files := range tables {
		if len(files) == 0 {
			return nil, nil, fmt.Errorf("driver: table %q has no files", name)
		}
		src := scan.New(driverClient, d.cfg.Scan, files...)
		schema, err := src.Schema()
		if err != nil {
			return nil, nil, fmt.Errorf("driver: resolving %q schema: %w", name, err)
		}
		optCat[name] = engine.NewMemSource(schema)
		srcs[name] = src
	}

	opt, err := engine.Optimize(plan, optCat)
	if err != nil {
		return nil, nil, err
	}

	// Pruning-aware fan-out: size the stage DAG from the rows the pushed-
	// down predicates can actually select, not the full table. The prune
	// predicates must be collected before Decompose — it rewrites the plan
	// in place.
	tablePreds := map[string][]lpq.Predicate{}
	engine.VisitScans(opt, func(s *engine.ScanPlan) {
		if len(s.Prune) > 0 {
			tablePreds[s.Table] = s.Prune
		}
	})
	stats := stageplan.Stats{Rows: map[string]int64{}}
	for name, src := range srcs {
		rows, err := src.EstimateRows(tablePreds[name])
		if err != nil {
			return nil, nil, fmt.Errorf("driver: estimating %q rows: %w", name, err)
		}
		stats.Rows[name] = rows
	}

	sp, err := stageplan.Decompose(opt, stats, stageplan.Config{
		Partitions:        cfg.Partitions,
		BroadcastRowLimit: cfg.BroadcastRowLimit,
		MaxAutoPartitions: cfg.MaxAutoPartitions,
	})
	if err != nil {
		return nil, nil, err
	}

	// Pruned file assignment: a file whose footer statistics rule out every
	// predicate match gets no scan worker at all — fewer invocations, and
	// the surviving workers still prune at row-group/page granularity.
	scanFiles := TableFiles{}
	for name, files := range tables {
		preds := tablePreds[name]
		if len(preds) == 0 {
			scanFiles[name] = files
			continue
		}
		var kept []scan.FileRef
		for _, f := range files {
			rows, err := srcs[name].EstimateFileRows(f, preds)
			if err != nil {
				return nil, nil, fmt.Errorf("driver: estimating %q file rows: %w", name, err)
			}
			if rows > 0 {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			// Every file pruned: keep one worker alive so the stage still
			// launches and seals (exchange consumers wait on its senders);
			// its scan reads only the footer and yields nothing.
			kept = files[:1]
		}
		scanFiles[name] = kept
	}

	// Load the genuinely small tables the planner kept as broadcast joins.
	blobs := map[string][]byte{}
	for _, name := range sp.Broadcast {
		chunk, err := d.loadTable(driverClient, tables[name])
		if err != nil {
			return nil, nil, fmt.Errorf("driver: loading broadcast table %q: %w", name, err)
		}
		blob, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, chunk)
		if err != nil {
			return nil, nil, err
		}
		blobs[name] = blob
	}

	buckets := d.s.InstallExchange(cfg.Exchange)
	sealTable := stagesTableName(d.cfg.FunctionName)
	d.dep.Dynamo.CreateTable(sealTable)

	// Epoch fence: durably increment this query ID's epoch before anything
	// else. Every artifact of the run — worker payloads, seal messages,
	// ready markers, the exchange boundary prefix — carries the epoch, and
	// the scheduler discards artifacts of older epochs, so an in-flight
	// worker of an aborted identically-numbered run cannot poison this one
	// no matter when it wakes. The purge and sweep below are then hygiene
	// (reclaiming queue slots and at-rest debris), not a correctness
	// mechanism racing zombie workers.
	epoch, err := d.acquireEpoch(sealTable, queryID)
	if err != nil {
		return nil, nil, fmt.Errorf("driver: acquiring epoch for %s: %w", queryID, err)
	}
	// prefix scopes the query across all epochs — sweeps cover every
	// epoch's debris — while the boundary namespace the payloads carry is
	// the fenced e<epoch> sub-prefix (built in stagePayloads).
	prefix := d.cfg.FunctionName + "/" + queryID

	if err := d.purgeResults(); err != nil {
		return nil, nil, err
	}
	if _, err := exchange.Sweep(driverClient, buckets, prefix); err != nil {
		return nil, nil, fmt.Errorf("driver: sweeping stale boundary %s: %w", prefix, err)
	}
	swept := false
	defer func() {
		// Stale-drain collector: reclaim the boundary namespace — winner
		// files and loser attempts alike — even when the query fails.
		if !swept {
			exchange.Sweep(driverClient, buckets, prefix)
		}
	}()

	// Worker counts: scan stages derive from their file count (F files per
	// worker); exchange-fed stages run one worker per partition.
	workers := map[int]int{}
	for _, st := range sp.Stages {
		if st.Table != "" {
			files := scanFiles[st.Table]
			if files == nil {
				return nil, nil, fmt.Errorf("driver: stage %d scans unknown table %q", st.ID, st.Table)
			}
			w := (len(files) + d.cfg.FilesPerWorker - 1) / d.cfg.FilesPerWorker
			if w > len(files) {
				w = len(files)
			}
			workers[st.ID] = w
			continue
		}
		parts := 0
		for _, in := range st.Inputs {
			for _, up := range sp.Stages {
				if up.ID == in.StageID && up.Output != nil {
					if parts != 0 && parts != up.Output.Partitions {
						return nil, nil, fmt.Errorf("driver: stage %d inputs disagree on partitions", st.ID)
					}
					parts = up.Output.Partitions
				}
			}
		}
		if parts == 0 {
			return nil, nil, fmt.Errorf("driver: stage %d has no boundary inputs", st.ID)
		}
		workers[st.ID] = parts
	}

	resultStage := sp.ResultStage()
	if resultStage == nil {
		return nil, nil, fmt.Errorf("driver: stage plan has no result stage")
	}

	// Resolve every boundary's exchange variant now that fleet sizes are
	// known: plan-pinned variants (Output.Variant.Levels > 0) stand, the
	// rest come from the analytic request model — multi-level only when the
	// request savings at this (S, P, B) pay for the regroup fleet, or when
	// cfg.ExchangeLevels forces it.
	for _, st := range sp.Stages {
		if st.Output == nil {
			continue
		}
		if st.Output.Variant.Levels == 0 {
			st.Output.Variant = stageplan.ChooseVariant(
				workers[st.ID], st.Output.Partitions, len(buckets),
				cfg.Exchange.Variant, cfg.ExchangeLevels)
		}
	}

	// Every stage's payloads are computable up front (worker counts depend
	// only on file and partition counts), so pipelined launch can invoke
	// consumers before their producers seal.
	runs := make([]*stageRun, 0, len(sp.Stages))
	byID := map[int]*stageRun{}
	for _, st := range sp.Stages {
		ps, err := d.stagePayloads(queryID, epoch, st, sp, scanFiles, workers, blobs, buckets, sealTable, cfg)
		if err != nil {
			return nil, nil, err
		}
		r := &stageRun{st: st, payloads: ps, winners: map[int]int{}}
		if st.Output != nil {
			r.boundary = st.Output.Variant
		}
		if tr.Enabled() {
			r.span = tr.StartSpan(obs.KindStage, "stage-"+strconv.Itoa(st.ID), qspan, d.env.Now())
		}
		runs = append(runs, r)
		byID[st.ID] = r
	}

	// Synthetic regroup fleets: every multi-level boundary gets its own
	// Groups(P)-worker stage between producer and consumers, scheduled like
	// any other — pipelined launch, speculation, failure-seal relaunch and
	// the liveness cap all apply. Consumers additionally depend on the
	// regroup seal (their round-2 objects exist only then).
	for _, st := range sp.Stages {
		if st.Output == nil || st.Output.Variant.Levels < 2 {
			continue
		}
		r, err := d.regroupRun(queryID, epoch, st, workers[st.ID], buckets, sealTable, cfg)
		if err != nil {
			return nil, nil, err
		}
		if tr.Enabled() {
			r.span = tr.StartSpan(obs.KindStage, "regroup-"+strconv.Itoa(st.ID), qspan, d.env.Now())
		}
		runs = append(runs, r)
		byID[r.st.ID] = r
		for _, c := range sp.Stages {
			for _, dep := range c.DependsOn {
				if dep == st.ID {
					c.DependsOn = append(c.DependsOn, r.st.ID)
					break
				}
			}
		}
	}

	adm := d.s.admission
	sealedID := func(id int) bool {
		r := byID[id]
		return r != nil && r.state == stageSealed
	}
	depsSealed := func(r *stageRun) bool {
		for _, dep := range r.st.DependsOn {
			if !sealedID(dep) {
				return false
			}
		}
		return true
	}
	// depsLaunched gates eager-pipelined launch under admission: a consumer
	// may take tokens only once every producer it depends on has its whole
	// fleet launched. Producers then always make progress with the tokens
	// they hold, so token-holding consumers parked on a ready barrier are
	// never waiting on a producer that admission starved — the inductive
	// liveness argument bottoms out at scan stages, which depend on nothing.
	depsLaunched := func(r *stageRun) bool {
		for _, dep := range r.st.DependsOn {
			if u := byID[dep]; u != nil && u.launched < len(u.payloads) {
				return false
			}
		}
		return true
	}
	launchable := func(r *stageRun) bool {
		if adm == nil {
			if r.state != stagePending {
				return false
			}
		} else if r.launched == len(r.payloads) {
			return false // fully launched; partial fleets stay launchable
		}
		if cfg.Pipelined && r.st.Eager {
			if adm != nil {
				return depsLaunched(r)
			}
			return true
		}
		return depsSealed(r)
	}

	var invocation time.Duration
	totalWorkers := 0
	launch := func(r *stageRun) error {
		if r.bodies == nil {
			r.bodies = make([][]byte, len(r.payloads))
			for i := range r.payloads {
				body, err := json.Marshal(&r.payloads[i])
				if err != nil {
					return err
				}
				r.bodies[i] = body
			}
		}
		first := r.state == stagePending
		invokeStart := d.env.Now()
		if adm == nil {
			// Invocation policy is per stage: small fleets (the final merge
			// of a wide query, say) launch directly even when big scan
			// fleets go through the invocation tree.
			tr.SetStart(r.span, invokeStart)
			if err := d.invokeAll(r.bodies, r.span); err != nil {
				return err
			}
			r.launched = len(r.bodies)
		} else {
			// Admission-governed partial launch: take tokens one worker at a
			// time without ever blocking — a driver blocked in Acquire could
			// not consume the seal messages that token-holding consumers are
			// waiting on. Whatever the pool denies stays at the cursor; the
			// event loop retries every pass as other containers settle.
			for r.launched < len(r.bodies) && adm.TryAcquire(1) {
				w := r.launched
				adm.Pace(d.env)
				if err := d.retry.policy.Do(d.env, "lambda.Invoke", func() error {
					return d.dep.Lambda.Invoke(d.env, d.cfg.FunctionName, r.bodies[w],
						lambdasvc.InvokeOptions{WorkerID: r.payloads[w].WorkerID, Pipelined: true, Span: r.span})
				}); err != nil {
					adm.Release(d.env, 1)
					return err
				}
				r.launched++
			}
			if first && r.launched > 0 {
				tr.SetStart(r.span, invokeStart)
			}
		}
		invocation += d.env.Now() - invokeStart
		if !first || r.launched == 0 {
			return nil
		}
		r.state = stageLaunched
		r.launchedAt = d.env.Now()
		r.policy = newStragglerPolicy(d.cfg.Speculate, len(r.payloads), r.launchedAt)
		// The all-stragglers liveness cap starts ticking once the stage is
		// runnable: immediately for stages whose producers already sealed
		// (scan stages, wave-gated launches), on the last producer's seal
		// otherwise — a pipelined consumer idling on the ready barrier is
		// not straggling.
		if depsSealed(r) {
			r.policy.armCap(stageCap(r.st, cfg), r.launchedAt)
		}
		totalWorkers += len(r.payloads)
		return nil
	}
	launchReady := func() error {
		for _, r := range runs {
			if launchable(r) {
				if err := launch(r); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := launchReady(); err != nil {
		return nil, nil, err
	}

	// Event loop: consume seal messages as they arrive, write the ready
	// marker the moment a stage's last worker sealed, launch whatever that
	// unblocked, and arm per-stage speculation for the rest.
	type workerResult struct {
		workerID int
		chunk    []byte
	}
	var results []workerResult
	var processing []time.Duration
	cold, speculated := 0, 0
	failureSeals := 0
	zombieDiscards, loserDiscards := 0, 0
	sealedCount := 0
	backupPacing := invoke.DriverPacing(d.cfg.Region, d.cfg.InvokeThreads)
	deadline := d.env.Now() + d.cfg.MaxWait
	for sealedCount < len(runs) {
		if adm != nil {
			// Resume partial launches: containers of this or other queries
			// settling since the last pass may have freed tokens.
			if err := launchReady(); err != nil {
				return nil, nil, err
			}
		}
		var msgs []sqs.Message
		if err := d.retry.policy.Do(d.env, "sqs.Receive", func() error {
			var rerr error
			msgs, rerr = d.dep.SQS.Receive(d.env, d.cfg.ResultQueue, 10)
			return rerr
		}); err != nil {
			return nil, nil, fmt.Errorf("driver: collecting seals: %w", err)
		}
		for _, m := range msgs {
			var rm resultMsg
			if err := json.Unmarshal(m.Body, &rm); err != nil {
				return nil, nil, err
			}
			if rm.QueryID != queryID || rm.Epoch != epoch {
				// Leftover of an earlier aborted query — including a zombie
				// worker of an aborted identically-numbered run posting its
				// seal after this run's purge: its older epoch fences it out.
				zombieDiscards++
				continue
			}
			r := byID[rm.Stage]
			if r == nil || r.state != stageLaunched {
				loserDiscards++
				continue // unknown stage, or a loser sealing after the stage did
			}
			if _, dup := r.winners[rm.WorkerID]; dup {
				loserDiscards++
				continue // losing half of a backup pair — files swept later
			}
			d.workerRetries += rm.Retries
			if rm.Err != "" {
				// Failure seal. A retryable one — the worker exhausted its
				// substrate retry budget, or died of a crash-class error —
				// is re-invoked through the attempt machinery: the fresh
				// attempt namespaces its boundary publishes exactly like a
				// speculation backup, so it cannot race the dead original.
				// Every invocation gets at least one relaunch even with
				// speculation disabled; deterministic plan or data errors
				// fail the query immediately with a structured error.
				relaunches := r.policy.maxRetries(r.st.MaxAttempts)
				if relaunches < 1 {
					relaunches = 1
				}
				if rm.Retryable && r.policy.attempts[rm.WorkerID] < relaunches {
					r.policy.attempts[rm.WorkerID]++
					failureSeals++
					backup := r.payloads[rm.WorkerID]
					backup.Attempt = r.policy.attempts[rm.WorkerID]
					body, err := json.Marshal(&backup)
					if err != nil {
						return nil, nil, err
					}
					if err := d.invokeOne(body, rm.WorkerID, r.span); err != nil {
						return nil, nil, fmt.Errorf("driver: relaunching stage %d worker %d: %w", rm.Stage, rm.WorkerID, err)
					}
					continue
				}
				return nil, nil, &StageFailure{QueryID: queryID, Stage: rm.Stage, Worker: rm.WorkerID, Attempt: rm.Attempt, Retryable: rm.Retryable, Msg: rm.Err}
			}
			r.winners[rm.WorkerID] = rm.Attempt
			if rm.Cold {
				cold++
			}
			processing = append(processing, time.Duration(rm.ProcessingNs))
			r.policy.record(d.env.Now())
			if rm.Stage == resultStage.ID && len(rm.Chunk) > 0 {
				results = append(results, workerResult{workerID: rm.WorkerID, chunk: rm.Chunk})
			}
			if len(r.winners) == len(r.payloads) {
				// Seal: every worker of the stage reported through SQS.
				// Ready: record it in DynamoDB for the consumers' barrier
				// (the Put broadcasts the completion signal, waking workers
				// parked in waitSealed at this exact instant).
				if err := d.retry.policy.Do(d.env, "dynamo.Put", func() error {
					return d.dep.Dynamo.Put(d.env, sealTable, sealKey(queryID, epoch, r.st.ID), []byte("sealed"))
				}); err != nil {
					return nil, nil, err
				}
				r.state = stageSealed
				r.sealedAt = d.env.Now()
				if tr.Enabled() {
					tr.SetTag(r.span, "workers", strconv.Itoa(len(r.payloads)))
					if r.speculated > 0 {
						tr.SetTag(r.span, "speculated", strconv.Itoa(r.speculated))
					}
					tr.EndSpan(r.span, r.sealedAt)
				}
				sealedCount++
				if err := launchReady(); err != nil {
					return nil, nil, err
				}
				// This seal may have made already-launched consumers
				// runnable: start their liveness-cap clocks now.
				for _, c := range runs {
					if c.state == stageLaunched && !c.policy.capArmed() && depsSealed(c) {
						c.policy.armCap(stageCap(c.st, cfg), d.env.Now())
					}
				}
			}
		}
		if sealedCount >= len(runs) {
			break
		}
		// Straggler speculation, per stage: the missing workers are past the
		// median-based deadline (or the stage's liveness cap expired with no
		// response at all) — re-invoke them as the next attempt. Their
		// boundary publishes land in a fresh attempt namespace, so whichever
		// attempt commits first wins. Backup bursts pace like any other
		// direct launch: the liveness cap can re-invoke a whole stage fleet
		// at once, which must not exceed the Invoke API rate.
		for _, r := range runs {
			if r.state != stageLaunched {
				continue
			}
			reported := func(w int) bool {
				if w >= r.launched {
					return true // never launched (admission backlog) — not a straggler
				}
				_, ok := r.winners[w]
				return ok
			}
			backups := r.policy.stragglers(d.env.Now(), reported, r.st.MaxAttempts)
			for i, w := range backups {
				r.speculated++
				speculated++
				backup := r.payloads[w]
				backup.Attempt = r.policy.attempts[w]
				body, err := json.Marshal(&backup)
				if err != nil {
					return nil, nil, err
				}
				if err := d.invokeOne(body, w, r.span); err != nil {
					return nil, nil, fmt.Errorf("driver: backup invocation of stage %d worker %d: %w", r.st.ID, w, err)
				}
				if i < len(backups)-1 {
					d.env.Sleep(backupPacing.Gap())
				}
			}
		}
		if d.env.Now() >= deadline {
			missing := 0
			for _, r := range runs {
				if r.state == stageLaunched {
					missing += len(r.payloads) - len(r.winners)
				}
			}
			return nil, nil, fmt.Errorf("driver: %d seal messages missing after %v", missing, d.cfg.MaxWait)
		}
		if len(msgs) == 0 {
			// Park on the result queue's completion topic: the loop wakes at
			// the instant the next seal lands instead of rounding the whole
			// query up to the next PollInterval tick, with the timed poll as
			// fallback — and stays parked through unrelated broadcasts
			// (boundary puts, ready markers) that used to wake it.
			simenv.WaitNotifyKey(d.env, "sqs/"+d.cfg.ResultQueue, d.cfg.PollInterval)
		}
	}

	// Driver scope: merge the result stage's outputs in worker order (the
	// arrival order is racy; worker order makes the merge deterministic).
	sort.Slice(results, func(i, j int) bool { return results[i].workerID < results[j].workerID })
	var chunks []*columnar.Chunk
	for _, r := range results {
		c, err := decodeChunk(r.chunk)
		if err != nil {
			return nil, nil, err
		}
		chunks = append(chunks, c)
	}
	rs, err := resultStage.Plan.OutSchema()
	if err != nil {
		return nil, nil, err
	}
	dcat := engine.Catalog{engine.WorkerResultTable: engine.NewMemSource(rs, chunks...)}
	result, err := engine.Execute(sp.Driver, dcat)
	if err != nil {
		return nil, nil, err
	}

	// All stages sealed, so no winner is still publishing: drain the
	// boundary namespace now and let its requests count toward the query.
	if _, err := exchange.Sweep(driverClient, buckets, prefix); err != nil {
		return nil, nil, fmt.Errorf("driver: sweeping boundary %s: %w", prefix, err)
	}
	swept = true

	sort.Slice(processing, func(i, j int) bool { return processing[i] < processing[j] })
	// Close the cost window only after every invocation — speculation and
	// relaunch losers included — finished billing, so per-span attribution
	// and the Report deltas agree exactly (no-op when tracing is off).
	d.quiesce()
	endTime := d.env.Now()
	rep := &Report{
		QueryID:          queryID,
		Epoch:            epoch,
		Workers:          totalWorkers,
		Stages:           len(sp.Stages),
		Duration:         endTime - startTime,
		Invocation:       invocation,
		WorkerProcessing: processing,
		ColdWorkers:      cold,
		Speculated:       speculated,
		FailureSeals:     failureSeals,
	}
	for _, r := range runs {
		ss := StageStat{
			StageID:    r.st.ID,
			Workers:    len(r.payloads),
			Launched:   r.launchedAt - startTime,
			Sealed:     r.sealedAt - startTime,
			Speculated: r.speculated,
			Span:       r.span,
		}
		if r.regroup {
			ss.StageID = r.regroupFor
			ss.Regroup = true
		}
		if r.boundary.Levels > 0 {
			ss.Variant = r.boundary.String()
		}
		rep.StageStats = append(rep.StageStats, ss)
	}
	if tr.Enabled() {
		if zombieDiscards > 0 {
			tr.SetTag(qspan, "zombieDiscards", strconv.Itoa(zombieDiscards))
		}
		if loserDiscards > 0 {
			tr.SetTag(qspan, "loserDiscards", strconv.Itoa(loserDiscards))
		}
		tr.EndSpan(qspan, endTime)
		rep.Trace, rep.Span = tr, qspan
	}
	d.fillCostDelta(rep, costBefore)
	return result, rep, nil
}

// purgeResults drains every leftover message from the result queue. Called
// before a staged query launches (no workers of this query are in flight
// yet, so everything received is stale). With the epoch fence this is queue
// hygiene, not a correctness mechanism: even a message posted after the
// purge by a zombie worker of an aborted identically-numbered run is
// discarded by its older epoch.
func (d *query) purgeResults() error {
	for {
		var msgs []sqs.Message
		if err := d.retry.policy.Do(d.env, "sqs.Receive", func() error {
			var rerr error
			msgs, rerr = d.dep.SQS.Receive(d.env, d.cfg.ResultQueue, 10)
			return rerr
		}); err != nil {
			return err
		}
		if len(msgs) == 0 {
			return nil
		}
	}
}

// stageCap resolves a stage's all-stragglers liveness cap: the stage's own
// MaxStageWait when set (negative = disabled), the StageConfig default
// otherwise.
func stageCap(st *stageplan.Stage, cfg StageConfig) time.Duration {
	if st.MaxStageWait != 0 {
		if st.MaxStageWait < 0 {
			return 0
		}
		return st.MaxStageWait
	}
	return cfg.MaxStageWait
}

// stagePayloads builds the invocation payloads of one stage (attempt 0),
// every one stamped with the query's epoch fence token.
func (d *query) stagePayloads(queryID string, epoch int, st *stageplan.Stage, sp *stageplan.Plan, tables TableFiles, workers map[int]int, blobs map[string][]byte, buckets []string, sealTable string, cfg StageConfig) ([]workerPayload, error) {
	planJSON, err := engine.MarshalPlan(st.Plan)
	if err != nil {
		return nil, err
	}
	spec := stageSpec{
		StageID:   st.ID,
		Variant:   exchange.Variant{Levels: 1, WriteCombining: cfg.Exchange.Variant.WriteCombining},
		Buckets:   buckets,
		Prefix:    fmt.Sprintf("%s/%s/e%d", d.cfg.FunctionName, queryID, epoch),
		PollNs:    int64(cfg.Exchange.Poll),
		MaxWaitNs: int64(cfg.Exchange.MaxWait),
		SealTable: sealTable,
		QueryID:   queryID,
		Epoch:     epoch,
	}
	for _, in := range st.Inputs {
		is := stageInputSpec{Input: in, Senders: workers[in.StageID]}
		for _, up := range sp.Stages {
			if up.ID == in.StageID && up.Output != nil {
				is.Variant = up.Output.Variant
				if up.Output.Variant.Levels >= 2 {
					is.RegroupStage = regroupStageID(in.StageID)
				}
			}
		}
		spec.Inputs = append(spec.Inputs, is)
	}
	spec.Output = st.Output
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}

	// Only ship the broadcast blobs the fragment references.
	var stageBlobs map[string][]byte
	for name := range blobs {
		if fragmentScans(st.Plan, name) {
			if stageBlobs == nil {
				stageBlobs = map[string][]byte{}
			}
			stageBlobs[name] = blobs[name]
		}
	}

	n := workers[st.ID]
	payloads := make([]workerPayload, n)
	files := tables[st.Table]
	per := 0
	if st.Table != "" {
		per = (len(files) + n - 1) / n
	}
	for w := 0; w < n; w++ {
		p := workerPayload{
			QueryID:     queryID,
			WorkerID:    w,
			NumWorkers:  n,
			Plan:        planJSON,
			ResultQueue: d.cfg.ResultQueue,
			StageID:     st.ID,
			StageSpec:   specJSON,
			Epoch:       epoch,
			Broadcast:   stageBlobs,
		}
		if st.Table != "" {
			lo, hi := w*per, (w+1)*per
			if hi > len(files) {
				hi = len(files)
			}
			if lo > hi {
				lo = hi
			}
			p.Table = st.Table
			p.Files = files[lo:hi]
		}
		payloads[w] = p
	}
	return payloads, nil
}

// loadTable reads a small table's lpq files whole on the driver (the §3.2
// "small amounts of data read locally" that broadcast joins ship).
func (d *query) loadTable(client *s3.Client, files []scan.FileRef) (*columnar.Chunk, error) {
	if len(files) == 0 {
		return nil, errors.New("no files")
	}
	src := scan.New(client, d.cfg.Scan, files...)
	schema, err := src.Schema()
	if err != nil {
		return nil, err
	}
	out := columnar.NewChunk(schema, 0)
	err = src.Scan(nil, nil, func(c *columnar.Chunk) error {
		out.AppendChunk(c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fragmentScans reports whether the fragment scans table (join build sides
// included).
func fragmentScans(p engine.Plan, table string) bool {
	found := false
	engine.VisitScans(p, func(s *engine.ScanPlan) {
		if s.Table == table {
			found = true
		}
	})
	return found
}

// runStageFragment is the worker side of a stage: wait out the upstream
// ready markers, collect this worker's partition of every input boundary,
// execute the fragment on the pipeline-graph scheduler, and either publish
// the partitioned output into this stage's attempt namespace or hand the
// chunk back for the SQS result post.
func (d *Session) runStageFragment(ctx *lambdasvc.Ctx, ws *retryScope, client *s3.Client, p *workerPayload, plan engine.Plan, cat engine.Catalog) (*columnar.Chunk, error) {
	var spec stageSpec
	if err := json.Unmarshal(p.StageSpec, &spec); err != nil {
		return nil, err
	}
	opts := exchange.Options{
		Variant: spec.Variant,
		Buckets: spec.Buckets,
		Prefix:  spec.Prefix,
		Poll:    time.Duration(spec.PollNs),
		MaxWait: time.Duration(spec.MaxWaitNs),
	}
	budget := engineMemoryBudget(ctx.MemoryMiB)
	var collected int64
	// One wait deadline for the whole fragment: a k-input stage gets
	// MaxWait across ALL its barriers — the ready-marker waits and the
	// exchange commit waits alike — not MaxWait per input (which let a
	// fragment wait k×MaxWait before reporting failure). Only waits are
	// bounded; the data reads themselves are not cut short.
	sealDeadline := ctx.Env.Now() + time.Duration(spec.MaxWaitNs)
	for _, in := range spec.Inputs {
		// Ready barrier: the driver marks a stage sealed in DynamoDB once
		// every producer reported through SQS. Under pipelined launch this
		// worker was invoked before its producers sealed, so the wait here
		// is where cold start and upstream execution overlap. Multi-level
		// boundaries gate on the regroup fleet's seal instead — the round-2
		// objects this worker reads exist only once every regroup worker
		// committed.
		waitStage := in.StageID
		if in.RegroupStage != 0 && in.Variant.Levels >= 2 {
			waitStage = in.RegroupStage
		}
		if err := d.waitSealed(ctx, ws, &spec, waitStage, sealDeadline); err != nil {
			return nil, err
		}
		copts := opts
		if in.Variant.Levels > 0 {
			copts.Variant = in.Variant
		}
		if rem := sealDeadline - ctx.Env.Now(); rem < copts.MaxWait {
			if rem < 0 {
				rem = 0
			}
			copts.MaxWait = rem
		}
		chunk, err := exchange.CollectStage(client, copts, exchange.Boundary{
			Stage:      in.StageID,
			Senders:    in.Senders,
			Partitions: p.NumWorkers,
		}, p.WorkerID)
		if err != nil {
			return nil, fmt.Errorf("collecting stage %d partition %d: %w", in.StageID, p.WorkerID, err)
		}
		// §3.3: report the working set exceeding the engine budget instead
		// of dying silently. A join stage holds BOTH sides' partitions at
		// once (plus build-side structures and output), so the guard sums
		// over the inputs collected so far.
		collected += chunk.ByteSize()
		if need := 3 * collected; need > budget {
			return nil, fmt.Errorf("%w: partition working set %d MiB exceeds engine budget %d MiB",
				ErrWorkerOOM, need>>20, budget>>20)
		}
		cat[in.Table] = engine.NewMemSource(chunk.Schema, chunk)
	}

	out, err := engine.ExecuteParallel(plan, cat, engine.ParallelConfig{Pipelines: d.cfg.PipelineParallelism})
	if err != nil {
		return nil, err
	}
	// Exchange-volume tags: output rows of the fragment and bytes collected
	// from upstream boundaries, read off the invocation span for the
	// per-stage profile (rows/bytes exchanged).
	tr := d.dep.Trace
	if tr.Enabled() && ctx.Span != 0 {
		tr.SetTag(ctx.Span, "rows.out", strconv.FormatInt(int64(out.NumRows()), 10))
		if n := client.BytesRead(); n > 0 {
			tr.SetTag(ctx.Span, "bytes.in", strconv.FormatInt(n, 10))
		}
	}
	if spec.Output == nil {
		return out, nil
	}
	wrote := client.BytesWritten()
	popts := opts
	if spec.Output.Variant.Levels > 0 {
		popts.Variant = spec.Output.Variant
	}
	err = exchange.PublishStage(client, popts, exchange.Boundary{
		Stage:      spec.StageID,
		Attempt:    p.Attempt,
		Senders:    p.NumWorkers,
		Partitions: spec.Output.Partitions,
	}, p.WorkerID, out, spec.Output.Keys)
	if err != nil {
		return nil, fmt.Errorf("publishing stage %d output: %w", spec.StageID, err)
	}
	if tr.Enabled() && ctx.Span != 0 {
		tr.SetTag(ctx.Span, "bytes.out", strconv.FormatInt(client.BytesWritten()-wrote, 10))
	}
	// The seal travels through the result queue: an empty chunk.
	return nil, nil
}

// waitSealed waits for the DynamoDB ready marker of a producing stage, up
// to the fragment-wide deadline. The marker key carries the query epoch, so
// a marker written by an aborted identically-numbered run can never satisfy
// this run's barrier. Between checks the worker parks on the completion
// signal dynamo.Put broadcasts — it wakes at the instant the marker lands
// instead of at the next poll boundary — with the timed poll as fallback.
func (d *Session) waitSealed(ctx *lambdasvc.Ctx, ws *retryScope, spec *stageSpec, stageID int, deadline time.Duration) error {
	for {
		err := ws.policy.Do(ctx.Env, "dynamo.Get", func() error {
			_, gerr := d.dep.Dynamo.Get(ctx.Env, spec.SealTable, sealKey(spec.QueryID, spec.Epoch, stageID))
			return gerr
		})
		if err == nil {
			return nil
		}
		if !errors.Is(err, dynamo.ErrNoSuchItem) {
			return err
		}
		if ctx.Env.Now() >= deadline {
			return fmt.Errorf("stage %d never sealed: %w", stageID, err)
		}
		// Park on this marker's exact completion topic: only the dynamo.Put
		// of this (query, epoch, stage) ready marker wakes the worker early.
		simenv.WaitNotifyKey(ctx.Env, "dynamo/"+spec.SealTable+"/"+sealKey(spec.QueryID, spec.Epoch, stageID), time.Duration(spec.PollNs))
	}
}
