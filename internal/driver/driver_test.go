package driver

import (
	"math"
	"strings"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/scan"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

const q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const q6SQL = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`

// localSetup installs Lambada on a functional deployment with uploaded data.
func localSetup(t *testing.T, cfg Config, sf float64, nfiles int) (*Driver, []scan.FileRef, *columnar.Chunk) {
	t.Helper()
	dep := NewLocal()
	env := simenv.NewImmediate()
	d := New(dep, env, cfg)
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	data := tpch.Gen{SF: sf, Seed: 33}.Generate()
	refs, err := d.UploadTable("tpch", "lineitem", data, nfiles, lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip})
	if err != nil {
		t.Fatal(err)
	}
	return d, refs, data
}

func TestEndToEndQ1Local(t *testing.T) {
	d, refs, data := localSetup(t, DefaultConfig(), 0.002, 8)
	out, rep, err := d.RunSQL(q1SQL, "lineitem", refs)
	if err != nil {
		t.Fatal(err)
	}
	ref := tpch.Q1Reference(data)
	if out.NumRows() != len(ref) {
		t.Fatalf("groups = %d, want %d", out.NumRows(), len(ref))
	}
	for i, r := range ref {
		if got := out.Column("sum_charge").Float64s[i]; math.Abs(got-r.SumCharge) > 1e-6*r.SumCharge {
			t.Errorf("row %d sum_charge = %v, want %v", i, got, r.SumCharge)
		}
		if got := out.Column("count_order").Int64s[i]; got != r.Count {
			t.Errorf("row %d count = %d, want %d", i, got, r.Count)
		}
		if got := out.Column("avg_disc").Float64s[i]; math.Abs(got-r.AvgDisc) > 1e-9 {
			t.Errorf("row %d avg_disc = %v, want %v", i, got, r.AvgDisc)
		}
	}
	if rep.Workers != 8 {
		t.Errorf("workers = %d, want 8 (F=1, 8 files)", rep.Workers)
	}
	if len(rep.WorkerProcessing) != 8 {
		t.Errorf("processing samples = %d", len(rep.WorkerProcessing))
	}
	if rep.TotalCost <= 0 {
		t.Error("query reported zero cost")
	}
	if rep.CostDelta[pricing.LabelS3Read] <= 0 {
		t.Error("no S3 read cost recorded")
	}
}

func TestEndToEndQ6Local(t *testing.T) {
	d, refs, data := localSetup(t, DefaultConfig(), 0.002, 8)
	out, _, err := d.RunSQL(q6SQL, "lineitem", refs)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", got, want)
	}
}

func TestFilesPerWorkerControlsFleetSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FilesPerWorker = 4
	d, refs, _ := localSetup(t, cfg, 0.002, 8)
	_, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 2 {
		t.Errorf("workers = %d, want 2 (8 files / F=4)", rep.Workers)
	}
}

func TestDirectVsTreeInvocationSameResult(t *testing.T) {
	for _, tree := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.TreeInvoke = tree
		d, refs, data := localSetup(t, cfg, 0.002, 9)
		out, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Fatalf("tree=%v: %v", tree, err)
		}
		want := tpch.Q6Reference(data)
		if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
			t.Errorf("tree=%v: revenue = %v, want %v", tree, got, want)
		}
		if rep.Workers != 9 {
			t.Errorf("tree=%v: workers = %d", tree, rep.Workers)
		}
	}
}

func TestWorkerErrorPropagates(t *testing.T) {
	d, refs, _ := localSetup(t, DefaultConfig(), 0.001, 2)
	// Corrupt one input object after upload: the assigned worker fails at
	// the footer read and reports through the result queue (§3.3: "if an
	// error occurred ... the handler posts a corresponding message").
	env := simenv.NewImmediate()
	if err := d.Deployment().S3.Put(env, refs[1].Bucket, refs[1].Key, []byte("corrupted")); err != nil {
		t.Fatal(err)
	}
	_, _, err := d.RunSQL(q6SQL, "lineitem", refs)
	if err == nil {
		t.Fatal("expected worker failure to propagate")
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Errorf("error %q does not identify the failing worker", err)
	}
}

func TestPlanErrorCaughtBeforeInvocation(t *testing.T) {
	d, refs, _ := localSetup(t, DefaultConfig(), 0.001, 2)
	// Unknown columns are caught at driver-side optimization time — no
	// workers are invoked (and none billed).
	before, _ := d.Deployment().Lambda.Invocations()
	_, _, err := d.RunSQL("SELECT SUM(no_such_column) AS s FROM lineitem", "lineitem", refs)
	if err == nil {
		t.Fatal("bad column accepted")
	}
	after, _ := d.Deployment().Lambda.Invocations()
	if after != before {
		t.Errorf("workers invoked despite plan error: %d -> %d", before, after)
	}
}

func TestEmptyFilesRejected(t *testing.T) {
	d, _, _ := localSetup(t, DefaultConfig(), 0.001, 1)
	if _, _, err := d.RunSQL(q6SQL, "lineitem", nil); err == nil {
		t.Error("no-files query accepted")
	}
}

func TestConsecutiveQueriesIsolated(t *testing.T) {
	d, refs, data := localSetup(t, DefaultConfig(), 0.002, 4)
	for i := 0; i < 3; i++ {
		out, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := tpch.Q6Reference(data)
		if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
			t.Errorf("query %d: revenue drifted: %v != %v", i, got, want)
		}
		if rep.QueryID == "" {
			t.Error("missing query id")
		}
	}
}

func TestEndToEndDESDeterministic(t *testing.T) {
	// The same query on the DES deployment: exact result, virtual-time
	// latency, full cost accounting — and bit-identical across runs.
	run := func() (float64, time.Duration, float64, int) {
		k := simclock.New()
		dep := NewSimulated(k, 99)
		var revenue float64
		var dur time.Duration
		var cost float64
		var cold int
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			data := tpch.Gen{SF: 0.002, Seed: 12}.Generate()
			refs, err := d.UploadTable("tpch", "lineitem", data, 6, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			out, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
			if err != nil {
				t.Error(err)
				return
			}
			revenue = out.Column("revenue").Float64s[0]
			dur = rep.Duration
			cost = rep.TotalCost
			cold = rep.ColdWorkers
		})
		k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		return revenue, dur, cost, cold
	}
	r1, d1, c1, cold1 := run()
	r2, d2, c2, _ := run()
	if r1 != r2 || d1 != d2 || c1 != c2 {
		t.Errorf("DES runs not deterministic: (%v,%v,%v) vs (%v,%v,%v)", r1, d1, c1, r2, d2, c2)
	}
	data := tpch.Gen{SF: 0.002, Seed: 12}.Generate()
	want := tpch.Q6Reference(data)
	if math.Abs(r1-want) > 1e-6*want {
		t.Errorf("DES revenue = %v, want %v", r1, want)
	}
	if d1 <= 0 || d1 > time.Minute {
		t.Errorf("virtual duration = %v, want interactive range", d1)
	}
	if cold1 == 0 {
		t.Error("fresh function reported no cold starts")
	}
	if c1 <= 0 {
		t.Error("no cost recorded")
	}
}

func TestHotRunFasterThanCold(t *testing.T) {
	k := simclock.New()
	dep := NewSimulated(k, 4)
	var coldDur, hotDur time.Duration
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		data := tpch.Gen{SF: 0.002, Seed: 5}.Generate()
		refs, err := d.UploadTable("tpch", "lineitem", data, 6, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		_, rep1, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Error(err)
			return
		}
		coldDur = rep1.Duration
		// Think time (usage model, Figure 2) — lets every container of the
		// cold run return to the warm pool.
		p.Sleep(30 * time.Second)
		_, rep2, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Error(err)
			return
		}
		hotDur = rep2.Duration
		// Run 1 is mostly cold; run 2 mostly warm. (A run-1 worker that
		// finishes before the fleet is fully launched is reused, so the
		// container pool can be one short of the fleet — exactly one cold
		// start may remain, as on real AWS.)
		if rep1.ColdWorkers < rep1.Workers-1 {
			t.Errorf("first run had only %d/%d cold workers", rep1.ColdWorkers, rep1.Workers)
		}
		if rep2.ColdWorkers > 1 {
			t.Errorf("second run had %d cold workers", rep2.ColdWorkers)
		}
	})
	k.Run()
	if hotDur >= coldDur {
		t.Errorf("hot run (%v) not faster than cold (%v)", hotDur, coldDur)
	}
}
