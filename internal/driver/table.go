package driver

import (
	"bytes"
	"fmt"

	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/scan"
)

// UploadTable writes a relation into S3 as nfiles lpq objects of contiguous
// row ranges (the paper stores LINEITEM as 320 Parquet files of ~500 MB)
// and returns the file references for queries. The bucket is created if
// missing. Re-uploading under an existing prefix overwrites the objects in
// place, so the session drops every cached result that read the bucket —
// the file references alone can no longer tell old data from new.
func (d *Session) UploadTable(env simenv.Env, bucket, prefix string, data *columnar.Chunk, nfiles int, opts lpq.WriterOptions) ([]scan.FileRef, error) {
	d.dep.S3.MustCreateBucket(bucket)
	if nfiles < 1 {
		nfiles = 1
	}
	retry := d.newRetryScope(-1)
	n := data.NumRows()
	per := (n + nfiles - 1) / nfiles
	var refs []scan.FileRef
	idx := 0
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		var buf bytes.Buffer
		w := lpq.NewWriter(&buf, data.Schema, opts)
		if err := w.Write(data.Slice(lo, hi)); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s/part-%05d.lpq", prefix, idx)
		if err := retry.policy.Do(env, "s3.Put", func() error {
			return d.dep.S3.Put(env, bucket, key, buf.Bytes())
		}); err != nil {
			return nil, err
		}
		refs = append(refs, scan.FileRef{Bucket: bucket, Key: key})
		idx++
	}
	d.cache.clear()
	return refs, nil
}

// UploadTable uploads through the façade's bound environment.
func (d *Driver) UploadTable(bucket, prefix string, data *columnar.Chunk, nfiles int, opts lpq.WriterOptions) ([]scan.FileRef, error) {
	return d.sess.UploadTable(d.env, bucket, prefix, data, nfiles, opts)
}
