package driver

import (
	"encoding/json"
	"testing"
	"time"

	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// runStagedWithStraggler runs the q12 shuffle on the DES deployment with
// one scan-stage worker stalled past the straggler deadline on its first
// attempt, speculation enabled, and a second query chased right behind the
// first (the stalled loser is still in flight then — its late seal and
// boundary files must not leak into it). It returns both queries' results
// and the first report.
func runStagedWithStraggler(t *testing.T, wc bool, levels int, stall time.Duration) (first, second *columnar.Chunk, rep *Report) {
	t.Helper()
	k := simclock.New()
	dep := NewSimulated(k, 53)
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.Speculate = DefaultSpeculateConfig()
		cfg.testWorkerDelay = func(stage, workerID, attempt int) time.Duration {
			// A degraded container stalls the first attempt of scan-stage
			// worker 1; the backup attempt lands on a healthy container.
			if stage == 0 && workerID == 1 && attempt == 0 {
				return stall
			}
			return 0
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 17}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Poll = 100 * time.Millisecond
		scfg.Exchange.Variant = exchange.Variant{Levels: 1, WriteCombining: wc}
		scfg.ExchangeLevels = levels
		first, rep, err = d.RunSQLStaged(q12ExactSQL, tables, scfg)
		if err != nil {
			t.Errorf("wc=%v: straggler query failed: %v", wc, err)
			return
		}
		// Run the same query again while the stalled loser attempt is still
		// in flight; its leftovers must not poison this one.
		second, _, err = d.RunSQLStaged(q12ExactSQL, tables, scfg)
		if err != nil {
			t.Errorf("wc=%v: follow-up query failed: %v", wc, err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	return first, second, rep
}

// TestStagedSpeculationCompletesViaBackup is the failure-injection
// acceptance test: with one stage worker delayed far past the straggler
// deadline, the staged query finishes through a backup attempt — results
// byte-identical to single-node execution, latency well below the stall —
// for both exchange variants, and a chased second query is untouched by the
// loser attempt's leftovers.
func TestStagedSpeculationCompletesViaBackup(t *testing.T) {
	const stall = 10 * time.Minute
	g := tpch.Gen{SF: 0.002, Seed: 17}
	li := g.Generate()
	orders := g.OrdersFor(li)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	for _, wc := range []bool{false, true} {
		first, second, rep := runStagedWithStraggler(t, wc, 1, stall)
		if t.Failed() {
			return
		}
		chunksIdentical(t, first, want)
		chunksIdentical(t, second, want)
		if rep.Speculated == 0 {
			t.Errorf("wc=%v: no backup attempts issued for the straggler", wc)
		}
		if rep.Duration >= stall {
			t.Errorf("wc=%v: latency %v waited out the %v stall", wc, rep.Duration, stall)
		}
		found := false
		for _, ss := range rep.StageStats {
			if ss.StageID == 0 && ss.Speculated > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("wc=%v: stage stats did not attribute the backup: %+v", wc, rep.StageStats)
		}
	}
}

// TestStagedSpeculationDESDeterministic: the speculated staged run is fully
// deterministic on the DES kernel — identical results, virtual latency and
// cost across runs, injected straggler and all.
func TestStagedSpeculationDESDeterministic(t *testing.T) {
	run := func() (int64, time.Duration) {
		first, _, rep := runStagedWithStraggler(t, true, 1, 2*time.Minute)
		if t.Failed() {
			t.FailNow()
		}
		return first.Column("n").Int64s[0], rep.Duration
	}
	n1, d1 := run()
	n2, d2 := run()
	if n1 != n2 || d1 != d2 {
		t.Errorf("speculated staged DES run not deterministic: (%d,%v) vs (%d,%v)", n1, d1, n2, d2)
	}
}

// TestStagedStaleArtifactsDoNotPoisonRetry: a fresh driver on the same
// deployment restarts query numbering, so a retried query reuses the q1
// namespace. Leftover completion messages and committed boundary files of
// the aborted first run — a loser attempt's garbage — must be purged and
// swept before the retry's barriers can see them.
func TestStagedStaleArtifactsDoNotPoisonRetry(t *testing.T) {
	dep := NewLocal()
	env := simenv.NewImmediate()
	cfg := DefaultConfig()
	d1 := New(dep, env, cfg)
	if err := d1.Install(); err != nil {
		t.Fatal(err)
	}
	g := tpch.Gen{SF: 0.002, Seed: 29}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d1.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ordRefs, err := d1.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}

	scfg := DefaultStageConfig()
	scfg.Partitions = 2
	scfg.BroadcastRowLimit = -1
	scfg.Exchange.Variant = exchange.Variant{Levels: 1}

	// Manufacture the aborted run's debris. Boundary garbage: a committed
	// attempt of stage-0 sender 0 under the q1 prefix whose rows would skew
	// every aggregate if collected.
	buckets := d1.InstallExchange(scfg.Exchange)
	opts := exchange.Options{
		Variant: scfg.Exchange.Variant,
		Buckets: buckets,
		Prefix:  cfg.FunctionName + "/q1",
		Poll:    time.Millisecond,
		MaxWait: time.Second,
	}
	poison := columnar.NewChunk(columnar.NewSchema(
		columnar.Field{Name: "l_orderkey", Type: columnar.Int64},
	), 64)
	for i := 0; i < 64; i++ {
		poison.Columns[0].AppendInt64(int64(i))
	}
	client := s3.NewClient(dep.S3, env)
	err = exchange.PublishStage(client, opts, exchange.Boundary{Stage: 0, Senders: 4, Partitions: 2}, 0, poison, []string{"l_orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	// Queue garbage: stale q1 seal messages, including a bogus result-stage
	// chunk.
	for _, rm := range []resultMsg{
		{QueryID: "q1", Stage: 0, WorkerID: 0},
		{QueryID: "q1", Stage: 3, WorkerID: 0, Chunk: []byte("not an lpq blob")},
	} {
		body, err := json.Marshal(rm)
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.SQS.Send(env, cfg.ResultQueue, body); err != nil {
			t.Fatal(err)
		}
	}

	// The retry: a fresh driver, same deployment, same query numbering.
	d2 := New(dep, simenv.NewImmediate(), cfg)
	if err := d2.Install(); err != nil {
		t.Fatal(err)
	}
	got, rep, err := d2.RunSQLStaged(q12ExactSQL, tables, scfg)
	if err != nil {
		t.Fatalf("retry poisoned by stale artifacts: %v", err)
	}
	if rep.QueryID != "q1" {
		t.Fatalf("retry ran as %s, want q1 (test premise broken)", rep.QueryID)
	}
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	chunksIdentical(t, got, want)
}

// TestStagedSweepClearsBoundaries: after a staged query returns, the
// stale-drain collector has emptied the query's boundary namespace in every
// shard bucket (all workers sealed before the driver swept, so nothing is
// republished afterwards).
func TestStagedSweepClearsBoundaries(t *testing.T) {
	d, tables, _, _ := stagedSetup(t, 0.002, 4, 2)
	cfg := DefaultStageConfig()
	cfg.Partitions = 2
	cfg.BroadcastRowLimit = -1
	if _, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg); err != nil {
		t.Fatal(err)
	}
	client := s3.NewClient(d.dep.S3, d.env)
	prefix := d.cfg.FunctionName + "/q1"
	for _, b := range d.InstallExchange(cfg.Exchange) {
		entries, err := client.List(b, prefix)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("bucket %s still holds %d objects under %s (first: %s)", b, len(entries), prefix, entries[0].Key)
		}
	}
}
