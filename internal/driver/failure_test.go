package driver

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"lambada/internal/awssim/lambdasvc"
	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/sqs"
	"lambada/internal/lpq"
	"lambada/internal/netmodel"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// TestQuerySurvivesThrottling runs a query against an S3 service with tight
// per-bucket rate limits: workers hit SlowDown, back off, retry, and the
// query still answers correctly (§5.5 footnote: "aggressive timeouts and
// retries are necessary").
func TestQuerySurvivesThrottling(t *testing.T) {
	k := simclock.New()
	meter := pricing.NewCostMeter()
	cfg := s3.DefaultAWSConfig(meter, 3)
	cfg.ReadsPerSecond = 40 // brutal: ~7 workers × dozens of requests
	cfg.WritesPerSecond = 40
	dep := &Deployment{
		S3:            s3.New(cfg),
		Lambda:        lambdasvc.New(lambdasvc.DefaultAWSConfig(meter, 4), lambdasvc.SimRuntime{K: k}),
		SQS:           newSQSFor(meter),
		Dynamo:        nil,
		Meter:         meter,
		Net:           defaultNet(),
		Deterministic: true,
		Shaped:        true,
	}
	var revenue float64
	var dur time.Duration
	k.Go("driver", func(p *simclock.Proc) {
		dcfg := DefaultConfig()
		dcfg.PollInterval = 100 * time.Millisecond
		d := New(dep, p, dcfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		data := tpch.Gen{SF: 0.002, Seed: 31}.Generate()
		refs, err := d.UploadTable("tpch", "lineitem", data, 6, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		out, rep, err := d.RunSQL(q6SQL, "lineitem", refs)
		if err != nil {
			t.Errorf("query failed under throttling: %v", err)
			return
		}
		revenue = out.Column("revenue").Float64s[0]
		dur = rep.Duration
	})
	k.Run()
	want := tpch.Q6Reference(tpch.Gen{SF: 0.002, Seed: 31}.Generate())
	if math.Abs(revenue-want) > 1e-6*want {
		t.Errorf("revenue = %v, want %v", revenue, want)
	}
	// Throttling shows up as time, not as wrong answers.
	if dur < 500*time.Millisecond {
		t.Errorf("throttled query finished suspiciously fast: %v", dur)
	}
}

// TestConcurrencyLimitRejectsInvocations verifies the fleet launch surfaces
// the Lambda concurrency limit (the paper had to raise it via support
// ticket for >1k workers).
func TestConcurrencyLimitRejectsInvocations(t *testing.T) {
	k := simclock.New()
	meter := pricing.NewCostMeter()
	lcfg := lambdasvc.DefaultAWSConfig(meter, 1)
	lcfg.ConcurrencyLimit = 3
	dep := &Deployment{
		S3:            s3.New(s3.Config{Meter: meter}),
		Lambda:        lambdasvc.New(lcfg, lambdasvc.SimRuntime{K: k}),
		SQS:           newSQSFor(meter),
		Meter:         meter,
		Net:           defaultNet(),
		Deterministic: true,
	}
	var err error
	k.Go("driver", func(p *simclock.Proc) {
		dcfg := DefaultConfig()
		dcfg.TreeInvoke = false
		d := New(dep, p, dcfg)
		if e := d.Install(); e != nil {
			t.Error(e)
			return
		}
		data := tpch.Gen{SF: 0.002, Seed: 5}.Generate()
		refs, e := d.UploadTable("tpch", "lineitem", data, 10, lpq.WriterOptions{RowGroupRows: 2000})
		if e != nil {
			t.Error(e)
			return
		}
		// 10 workers against a limit of 3: the launch must fail loudly.
		_, _, err = d.RunSQL(q6SQL, "lineitem", refs)
	})
	k.Run()
	if !errors.Is(err, lambdasvc.ErrTooManyRequests) {
		t.Errorf("err = %v, want concurrency-limit rejection", err)
	}
}

// TestWorkerOOMReported gives workers far too little memory for the row
// groups they must materialize; the engine reports OOM through the result
// queue instead of dying silently (§3.3).
func TestWorkerOOMReported(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WorkerMemoryMiB = 192 // budget after headroom: ~1 MiB
	d, _, _ := localSetup(t, cfg, 0.001, 1)
	// Rebuild the table with one huge row group so a single chunk exceeds
	// the worker's engine budget.
	data := tpch.Gen{SF: 0.02, Seed: 3}.Generate() // ~120k rows ≈ 12 MB chunks
	refs, err := d.UploadTable("big", "lineitem", data, 1, lpq.WriterOptions{RowGroupRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = d.RunSQL("SELECT COUNT(*) AS n FROM lineitem", "lineitem", refs)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	if !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("error %q does not mention OOM", err)
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Errorf("error %q does not identify the worker", err)
	}
}

// TestBigWorkerHandlesSameInput: the identical input succeeds on a
// full-size worker — the OOM above is a function of worker memory, not a
// data defect.
func TestBigWorkerHandlesSameInput(t *testing.T) {
	d, _, _ := localSetup(t, DefaultConfig(), 0.001, 1)
	data := tpch.Gen{SF: 0.02, Seed: 3}.Generate()
	refs, err := d.UploadTable("big", "lineitem", data, 1, lpq.WriterOptions{RowGroupRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := d.RunSQL("SELECT COUNT(*) AS n FROM lineitem", "lineitem", refs)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Column("n").Int64s[0]; got != int64(data.NumRows()) {
		t.Errorf("count = %d, want %d", got, data.NumRows())
	}
}

// Test helpers constructing partial deployments.

func newSQSFor(meter *pricing.CostMeter) *sqs.Service {
	return sqs.New(sqs.DefaultAWSConfig(meter, 2))
}

func defaultNet() netmodel.LambdaNet { return netmodel.DefaultLambdaNet() }
