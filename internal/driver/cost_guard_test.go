package driver

import (
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// runStagedCost executes the selective-predicate q12 under DES with the
// given file layout and scan-config mutation, returning the result chunk
// and the run's billed S3 counters.
func runStagedCost(t *testing.T, liOpts, ordOpts lpq.WriterOptions, mutate func(*Config), wc bool) (*columnar.Chunk, *Report, *columnar.Chunk, *columnar.Chunk) {
	t.Helper()
	k := simclock.New()
	dep := NewSimulated(k, 47)
	var out *columnar.Chunk
	var rep *Report
	var li, orders *columnar.Chunk
	k.Go("driver", func(p *simclock.Proc) {
		cfg := DefaultConfig()
		if mutate != nil {
			mutate(&cfg)
		}
		d := New(dep, p, cfg)
		if err := d.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 33}
		li = g.Generate()
		orders = g.OrdersFor(li)
		liRefs, err := d.UploadTable("tpch", "lineitem", li, 6, liOpts)
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := d.UploadTable("tpch", "orders", orders, 3, ordOpts)
		if err != nil {
			t.Error(err)
			return
		}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.Exchange.Variant = exchange.Variant{Levels: 1, WriteCombining: wc}
		out, rep, err = d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Errorf("staged q12 failed: %v", err)
		}
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	if t.Failed() {
		t.FailNow()
	}
	return out, rep, li, orders
}

// TestStagedSelectiveScanCostGuard is the acceptance-criterion test of the
// price-aware scan layer: staged q12 (selective l_receiptdate range) on v2
// paged files with late materialization and coalescing must bill strictly
// fewer S3 GETs AND strictly fewer S3 bytes than the pre-page-index
// pattern — v1 files, one GET per column chunk, no late materialization —
// at byte-identical results, on both exchange variants, deterministically
// across repeated DES runs.
func TestStagedSelectiveScanCostGuard(t *testing.T) {
	baseOpts := lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip, FormatV1: true}
	baseMut := func(c *Config) {
		c.Scan.CoalesceGapBytes = -1
		c.Scan.DisableLateMaterialize = true
	}
	// The filtered fact table is paged for fine-grained pruning; the
	// unfiltered orders table keeps the default layout (unpaged chunks —
	// paging an always-fully-read table would only cost compression ratio).
	liOpts := lpq.WriterOptions{RowGroupRows: 2000, PageRows: 512, Compression: lpq.Gzip}
	ordOpts := lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip}

	for _, wc := range []bool{false, true} {
		baseOut, baseRep, li, orders := runStagedCost(t, baseOpts, baseOpts, baseMut, wc)
		newOut, newRep, _, _ := runStagedCost(t, liOpts, ordOpts, nil, wc)
		newOut2, newRep2, _, _ := runStagedCost(t, liOpts, ordOpts, nil, wc)

		want := singleNode(t, q12ExactSQL, engine.Catalog{
			"lineitem": engine.NewMemSource(tpch.Schema(), li),
			"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
		})
		chunksIdentical(t, baseOut, want)
		chunksIdentical(t, newOut, want)
		chunksIdentical(t, newOut2, want)

		if baseRep.S3GetRequests <= 0 || baseRep.S3ReadBytes <= 0 {
			t.Fatalf("wc=%v: baseline counters not recorded: %d GETs, %d bytes",
				wc, baseRep.S3GetRequests, baseRep.S3ReadBytes)
		}
		if newRep.S3GetRequests >= baseRep.S3GetRequests {
			t.Errorf("wc=%v: billed GETs = %d, baseline = %d — want strictly fewer",
				wc, newRep.S3GetRequests, baseRep.S3GetRequests)
		}
		if newRep.S3ReadBytes >= baseRep.S3ReadBytes {
			t.Errorf("wc=%v: billed bytes = %d, baseline = %d — want strictly fewer",
				wc, newRep.S3ReadBytes, baseRep.S3ReadBytes)
		}
		if newRep.S3GetRequests != newRep2.S3GetRequests || newRep.S3ReadBytes != newRep2.S3ReadBytes {
			t.Errorf("wc=%v: billing not deterministic: (%d, %d) vs (%d, %d)",
				wc, newRep.S3GetRequests, newRep.S3ReadBytes, newRep2.S3GetRequests, newRep2.S3ReadBytes)
		}
	}
}
