package driver

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/sqlfe"
	"lambada/internal/tpch"
)

// q12ExactSQL is the Q12-shaped two-large-sides join with integer-exact
// aggregates only (COUNT, SUM over BIGINT, MIN/MAX), so distributed results
// are byte-identical to single-node execution regardless of merge order.
const q12ExactSQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_linenumber) AS lines,
       MIN(l_shipdate) AS first_ship, MAX(l_shipdate) AS last_ship
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1996-01-01'
  AND l_commitdate < l_receiptdate
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

// q12RevenueSQL is the same shape with the float revenue sum of the real
// Q12 workload.
const q12RevenueSQL = `
SELECT o_orderpriority, COUNT(*) AS n, SUM(l_extendedprice) AS total
FROM lineitem INNER JOIN orders ON lineitem.l_orderkey = orders.o_orderkey
WHERE l_receiptdate >= DATE '1995-01-01' AND l_receiptdate < DATE '1996-01-01'
  AND l_commitdate < l_receiptdate
GROUP BY o_orderpriority
ORDER BY o_orderpriority`

// stagedSetup uploads LINEITEM and ORDERS as lpq files on a functional
// deployment.
func stagedSetup(t *testing.T, sf float64, liFiles, ordFiles int) (*Driver, TableFiles, *columnar.Chunk, *columnar.Chunk) {
	t.Helper()
	dep := NewLocal()
	env := simenv.NewImmediate()
	d := New(dep, env, DefaultConfig())
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	g := tpch.Gen{SF: sf, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := d.UploadTable("tpch", "lineitem", li, liFiles, lpq.WriterOptions{RowGroupRows: 2000, Compression: lpq.Gzip})
	if err != nil {
		t.Fatal(err)
	}
	ordRefs, err := d.UploadTable("tpch", "orders", orders, ordFiles, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return d, TableFiles{"lineitem": liRefs, "orders": ordRefs}, li, orders
}

func chunksIdentical(t *testing.T, got, want *columnar.Chunk) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema = %v, want %v", got.Schema, want.Schema)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for j := range want.Columns {
		g, w := got.Columns[j], want.Columns[j]
		for i := 0; i < want.NumRows(); i++ {
			switch w.Type {
			case columnar.Int64:
				if g.Int64s[i] != w.Int64s[i] {
					t.Fatalf("col %d row %d = %d, want %d", j, i, g.Int64s[i], w.Int64s[i])
				}
			case columnar.Float64:
				if math.Float64bits(g.Float64s[i]) != math.Float64bits(w.Float64s[i]) {
					t.Fatalf("col %d row %d = %v, want %v", j, i, g.Float64s[i], w.Float64s[i])
				}
			case columnar.Bool:
				if g.Bools[i] != w.Bools[i] {
					t.Fatalf("col %d row %d = %v, want %v", j, i, g.Bools[i], w.Bools[i])
				}
			}
		}
	}
}

func singleNode(t *testing.T, sql string, cat engine.Catalog) *columnar.Chunk {
	t.Helper()
	plan, err := sqlfe.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestShuffleJoinByteIdenticalAcrossConfigs is the acceptance-criterion
// test: a two-large-sides join (neither side broadcastable) runs end-to-end
// through stageplan + the exchange and is byte-identical to single-node
// engine.Execute at multiple worker/partition configurations and exchange
// variants.
func TestShuffleJoinByteIdenticalAcrossConfigs(t *testing.T) {
	configs := []struct {
		liFiles, ordFiles, parts int
		wc                       bool
	}{
		{liFiles: 6, ordFiles: 4, parts: 2, wc: false},
		{liFiles: 9, ordFiles: 3, parts: 5, wc: true},
	}
	for _, tc := range configs {
		d, tables, li, orders := stagedSetup(t, 0.002, tc.liFiles, tc.ordFiles)
		cfg := DefaultStageConfig()
		cfg.Partitions = tc.parts
		cfg.BroadcastRowLimit = -1 // force shuffle on every join
		cfg.Exchange.Variant = exchange.Variant{Levels: 1, WriteCombining: tc.wc}

		got, rep, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := singleNode(t, q12ExactSQL, engine.Catalog{
			"lineitem": engine.NewMemSource(tpch.Schema(), li),
			"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
		})
		chunksIdentical(t, got, want)

		if rep.Stages != 4 {
			t.Errorf("%+v: stages = %d, want 4 (scan, scan, join+partial, final)", tc, rep.Stages)
		}
		// Pruning-aware fan-out: the l_receiptdate range rules out whole
		// lineitem files by footer statistics, so the lineitem scan fleet
		// is strictly smaller than one-worker-per-file; orders is
		// unfiltered and keeps every file, and exchange stages one worker
		// per partition.
		maxWorkers := tc.liFiles + tc.ordFiles + 2*tc.parts
		minWorkers := 1 + tc.ordFiles + 2*tc.parts
		if rep.Workers < minWorkers || rep.Workers >= maxWorkers {
			t.Errorf("%+v: workers = %d, want in [%d, %d) (pruned lineitem fleet)",
				tc, rep.Workers, minWorkers, maxWorkers)
		}
		// The shuffle must actually have gone through S3 and the barriers
		// through DynamoDB.
		if rep.CostDelta[pricing.LabelS3Write] <= 0 {
			t.Errorf("%+v: no exchange writes recorded", tc)
		}
		if rep.CostDelta[pricing.LabelDynamoWrite] <= 0 {
			t.Errorf("%+v: no seal markers recorded", tc)
		}
	}
}

// TestStagedQ12MatchesBroadcastAndReference runs the float-revenue Q12
// shape through both the shuffle path and the broadcast path and checks
// both against the scalar reference.
func TestStagedQ12MatchesBroadcastAndReference(t *testing.T) {
	d, tables, li, orders := stagedSetup(t, 0.002, 6, 4)
	ref := tpch.Q12Reference(li, orders)

	check := func(label string, out *columnar.Chunk) {
		t.Helper()
		if out.NumRows() != len(ref) {
			t.Fatalf("%s: groups = %d, want %d", label, out.NumRows(), len(ref))
		}
		for i, r := range ref {
			if out.Column("o_orderpriority").Int64s[i] != r.Priority {
				t.Fatalf("%s: row %d priority mismatch", label, i)
			}
			if out.Column("n").Int64s[i] != r.Count {
				t.Errorf("%s: row %d count = %d, want %d", label, i, out.Column("n").Int64s[i], r.Count)
			}
			g := out.Column("total").Float64s[i]
			if math.Abs(g-r.Total) > 1e-6*math.Max(1, r.Total) {
				t.Errorf("%s: row %d total = %v, want %v", label, i, g, r.Total)
			}
		}
	}

	// Shuffle: neither side broadcastable.
	cfg := DefaultStageConfig()
	cfg.BroadcastRowLimit = -1
	shuffled, rep, err := d.RunSQLStaged(q12RevenueSQL, tables, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check("shuffle", shuffled)
	if rep.Stages != 4 {
		t.Errorf("shuffle stages = %d", rep.Stages)
	}

	// Broadcast: the same SQL through the legacy driver-broadcast path.
	bcast, _, err := d.RunSQLBroadcast(q12RevenueSQL, "lineitem", tables["lineitem"],
		map[string]*columnar.Chunk{"orders": orders})
	if err != nil {
		t.Fatal(err)
	}
	check("broadcast", bcast)

	// Staged with a generous row limit: the planner itself picks broadcast
	// for ORDERS and the plan collapses to scan+partial → final.
	cfg2 := DefaultStageConfig()
	cfg2.BroadcastRowLimit = 1 << 30
	picked, rep2, err := d.RunSQLStaged(q12RevenueSQL, tables, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	check("staged-broadcast", picked)
	if rep2.Stages != 2 {
		t.Errorf("staged-broadcast stages = %d, want 2", rep2.Stages)
	}
}

// keyShapeTables builds synthetic join inputs exercising one key shape.
func keyShapeTables(shape string, n int) (left, right *columnar.Chunk) {
	ls := columnar.NewSchema(
		columnar.Field{Name: "lk", Type: columnar.Int64},
		columnar.Field{Name: "lk2", Type: columnar.Int64},
		columnar.Field{Name: "lv", Type: columnar.Int64},
	)
	rs := columnar.NewSchema(
		columnar.Field{Name: "rk", Type: columnar.Int64},
		columnar.Field{Name: "rk2", Type: columnar.Int64},
		columnar.Field{Name: "rv", Type: columnar.Int64},
	)
	l := columnar.NewChunk(ls, n)
	r := columnar.NewChunk(rs, n)
	for i := 0; i < n; i++ {
		var lk, rk int64
		switch shape {
		case "duplicate":
			lk, rk = int64(i%7), int64(i%5) // many-to-many matches
		case "sparse":
			lk = int64(i) * 1_000_003 // wide span: open-addressing mode
			rk = int64(n-1-i) * 1_000_003
		default: // composite uses (k, k2) pairs
			lk, rk = int64(i%13), int64(i%11)
		}
		l.Columns[0].AppendInt64(lk)
		l.Columns[1].AppendInt64(int64(i % 3))
		l.Columns[2].AppendInt64(int64(i))
		r.Columns[0].AppendInt64(rk)
		r.Columns[1].AppendInt64(int64(i % 3))
		r.Columns[2].AppendInt64(int64(10 * i))
	}
	return l, r
}

// TestStagedByteIdentityKeyShapes compares shuffle, staged-broadcast and
// single-node execution on duplicate, sparse and composite join keys —
// all integer aggregates, so every path must agree byte-for-byte.
func TestStagedByteIdentityKeyShapes(t *testing.T) {
	queries := map[string]string{
		"duplicate": `
SELECT lk2, COUNT(*) AS n, SUM(lv) AS sl, SUM(rv) AS sr
FROM ltab INNER JOIN rtab ON ltab.lk = rtab.rk
GROUP BY lk2 ORDER BY lk2`,
		"sparse": `
SELECT lk2, COUNT(*) AS n, SUM(lv) AS sl, SUM(rv) AS sr
FROM ltab INNER JOIN rtab ON ltab.lk = rtab.rk
GROUP BY lk2 ORDER BY lk2`,
		"composite": `
SELECT lk2, COUNT(*) AS n, SUM(lv) AS sl, SUM(rv) AS sr
FROM ltab INNER JOIN rtab ON ltab.lk = rtab.rk AND ltab.lk2 = rtab.rk2
GROUP BY lk2 ORDER BY lk2`,
	}
	for _, shape := range []string{"duplicate", "sparse", "composite"} {
		left, right := keyShapeTables(shape, 600)

		dep := NewLocal()
		d := New(dep, simenv.NewImmediate(), DefaultConfig())
		if err := d.Install(); err != nil {
			t.Fatal(err)
		}
		lrefs, err := d.UploadTable("tpch", "ltab", left, 4, lpq.WriterOptions{RowGroupRows: 100})
		if err != nil {
			t.Fatal(err)
		}
		rrefs, err := d.UploadTable("tpch", "rtab", right, 3, lpq.WriterOptions{RowGroupRows: 100})
		if err != nil {
			t.Fatal(err)
		}
		tables := TableFiles{"ltab": lrefs, "rtab": rrefs}

		want := singleNode(t, queries[shape], engine.Catalog{
			"ltab": engine.NewMemSource(left.Schema, left),
			"rtab": engine.NewMemSource(right.Schema, right),
		})

		cfg := DefaultStageConfig()
		cfg.Partitions = 3
		cfg.BroadcastRowLimit = -1
		shuffled, rep, err := d.RunSQLStaged(queries[shape], tables, cfg)
		if err != nil {
			t.Fatalf("%s shuffle: %v", shape, err)
		}
		chunksIdentical(t, shuffled, want)
		if rep.Stages != 4 {
			t.Errorf("%s: shuffle stages = %d", shape, rep.Stages)
		}

		cfg2 := DefaultStageConfig()
		cfg2.BroadcastRowLimit = 1 << 20
		bcast, rep2, err := d.RunSQLStaged(queries[shape], tables, cfg2)
		if err != nil {
			t.Fatalf("%s staged-broadcast: %v", shape, err)
		}
		chunksIdentical(t, bcast, want)
		if rep2.Stages != 2 {
			t.Errorf("%s: staged-broadcast stages = %d", shape, rep2.Stages)
		}
	}
}

// TestStagedGroupByNoJoinByteIdentical: the partial→final aggregation split
// over the exchange (no join involved) is byte-identical to single-node.
func TestStagedGroupByNoJoinByteIdentical(t *testing.T) {
	const sql = `
SELECT l_suppkey, COUNT(*) AS n, MIN(l_orderkey) AS first_ord, MAX(l_orderkey) AS last_ord
FROM lineitem
GROUP BY l_suppkey ORDER BY l_suppkey`
	d, tables, li, _ := stagedSetup(t, 0.002, 8, 1)
	cfg := DefaultStageConfig()
	cfg.Partitions = 3
	got, rep, err := d.RunSQLStaged(sql, TableFiles{"lineitem": tables["lineitem"]}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, sql, engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema(), li)})
	chunksIdentical(t, got, want)
	if rep.Stages != 2 {
		t.Errorf("stages = %d, want 2", rep.Stages)
	}
}

// TestStagedDESDeterministic runs the shuffle join on the DES kernel twice:
// identical results, virtual duration and cost — worker code spawned no
// goroutines and every barrier resolved in virtual time.
func TestStagedDESDeterministic(t *testing.T) {
	run := func() (int64, time.Duration, float64) {
		k := simclock.New()
		dep := NewSimulated(k, 71)
		var firstCount int64
		var dur time.Duration
		var cost float64
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			g := tpch.Gen{SF: 0.002, Seed: 11}
			li := g.Generate()
			orders := g.OrdersFor(li)
			liRefs, err := d.UploadTable("tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			ordRefs, err := d.UploadTable("tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			scfg := DefaultStageConfig()
			scfg.Partitions = 2
			scfg.BroadcastRowLimit = -1
			scfg.Exchange.Poll = 100 * time.Millisecond
			out, rep, err := d.RunSQLStaged(q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
			if err != nil {
				t.Error(err)
				return
			}
			if out.NumRows() == 0 {
				t.Error("empty result")
				return
			}
			firstCount = out.Column("n").Int64s[0]
			dur = rep.Duration
			cost = rep.TotalCost
		})
		k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		return firstCount, dur, cost
	}
	n1, d1, c1 := run()
	n2, d2, c2 := run()
	if n1 != n2 || d1 != d2 || c1 != c2 {
		t.Errorf("staged DES run not deterministic: (%d,%v,%v) vs (%d,%v,%v)", n1, d1, c1, n2, d2, c2)
	}
	if n1 <= 0 {
		t.Errorf("first group count = %d", n1)
	}
	if d1 <= 0 || d1 > 5*time.Minute {
		t.Errorf("virtual duration = %v", d1)
	}
}

// TestStagedBareJoinRowsMatch: a shuffle join without aggregation posts the
// joined rows themselves; after the driver-side ORDER BY the row multiset
// must match single-node execution.
func TestStagedBareJoinRowsMatch(t *testing.T) {
	const sql = `
SELECT lv, rv
FROM ltab INNER JOIN rtab ON ltab.lk = rtab.rk AND ltab.lk2 = rtab.rk2
ORDER BY lv, rv`
	left, right := keyShapeTables("composite", 200)
	dep := NewLocal()
	d := New(dep, simenv.NewImmediate(), DefaultConfig())
	if err := d.Install(); err != nil {
		t.Fatal(err)
	}
	lrefs, err := d.UploadTable("tpch", "ltab", left, 3, lpq.WriterOptions{RowGroupRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	rrefs, err := d.UploadTable("tpch", "rtab", right, 2, lpq.WriterOptions{RowGroupRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultStageConfig()
	cfg.Partitions = 2
	cfg.BroadcastRowLimit = -1
	got, rep, err := d.RunSQLStaged(sql, TableFiles{"ltab": lrefs, "rtab": rrefs}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, sql, engine.Catalog{
		"ltab": engine.NewMemSource(left.Schema, left),
		"rtab": engine.NewMemSource(right.Schema, right),
	})
	chunksIdentical(t, got, want)
	if rep.Stages != 3 {
		t.Errorf("stages = %d, want 3 (scan, scan, join)", rep.Stages)
	}
}

// TestStagedPipelinedMatchesWaves: pipelined launch (consumers invoked
// before their producers seal) and wave-gated launch produce byte-identical
// results, and the per-stage timings show the launches actually overlapped:
// pipelined invokes every stage before the first seal, waves hold consumers
// back until their producers sealed.
func TestStagedPipelinedMatchesWaves(t *testing.T) {
	d, tables, li, orders := stagedSetup(t, 0.002, 6, 3)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	run := func(pipelined bool) *Report {
		cfg := DefaultStageConfig()
		cfg.Partitions = 3
		cfg.BroadcastRowLimit = -1
		cfg.Pipelined = pipelined
		got, rep, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
		if err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		chunksIdentical(t, got, want)
		return rep
	}
	pipe, waves := run(true), run(false)

	maxLaunch, minSeal := time.Duration(0), time.Duration(1)<<62
	for _, ss := range pipe.StageStats {
		if ss.Launched > maxLaunch {
			maxLaunch = ss.Launched
		}
		if ss.Sealed < minSeal {
			minSeal = ss.Sealed
		}
	}
	if maxLaunch > minSeal {
		t.Errorf("pipelined launch not overlapped: last launch %v after first seal %v", maxLaunch, minSeal)
	}
	// Wave-gated: the join (third stage to launch — the DAG is scan, scan →
	// join → final) must wait for both scan stages to seal, and the final
	// merge for the join.
	byLaunch := append([]StageStat(nil), waves.StageStats...)
	sort.Slice(byLaunch, func(i, j int) bool { return byLaunch[i].Launched < byLaunch[j].Launched })
	if j := byLaunch[2]; j.Launched < byLaunch[0].Sealed || j.Launched < byLaunch[1].Sealed {
		t.Errorf("wave launch not gated: join launched %v, producers sealed %v/%v",
			j.Launched, byLaunch[0].Sealed, byLaunch[1].Sealed)
	}
	if f := byLaunch[3]; f.Launched < byLaunch[2].Sealed {
		t.Errorf("wave launch not gated: final launched %v, join sealed %v", f.Launched, byLaunch[2].Sealed)
	}
}

// TestStagedDrainsStaleResults: seal messages left in the result queue by
// an earlier aborted query must not fail the next staged query — the wave
// collector discards them by query ID and keeps polling for its own.
func TestStagedDrainsStaleResults(t *testing.T) {
	d, tables, li, orders := stagedSetup(t, 0.002, 4, 2)
	// A leftover message from a query that aborted mid-wave. Queries now
	// collect on per-query queues, so plant the zombie where the next query
	// (q1 on this fresh session) will actually poll: a restarted driver
	// reusing the counter inherits any queue a crashed predecessor left
	// behind under the same name.
	q1Queue := queryQueueName(d.cfg.ResultQueue, "q1")
	d.dep.SQS.CreateQueue(q1Queue)
	stale, err := json.Marshal(resultMsg{QueryID: "q999", WorkerID: 3, Stage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.dep.SQS.Send(d.env, q1Queue, stale); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultStageConfig()
	cfg.Partitions = 2
	cfg.BroadcastRowLimit = -1
	got, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg)
	if err != nil {
		t.Fatalf("staged query failed on a stale leftover: %v", err)
	}
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	chunksIdentical(t, got, want)
}
