package driver

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/awssim/sqs"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// sessionRun captures everything one concurrent-session DES run exposes for
// the acceptance assertions: per-query results and reports, the virtual end
// time, and the epoch fence rows the queries left behind.
type sessionRun struct {
	outs   []*columnar.Chunk
	reps   []*Report
	epochs map[string]int
	vend   time.Duration
}

// runSessionConcurrentQ12 runs K staged q12 queries CONCURRENTLY — each as
// its own DES process — on one resident session over one simulated
// deployment, under a deployment-wide admission cap. Queries alternate
// between 2 and 3 join partitions so the interleaved schedulers exercise
// different fleet shapes.
func runSessionConcurrentQ12(t *testing.T, sess *Session, k *simclock.Kernel, dep *Deployment, levels, K int) sessionRun {
	t.Helper()
	res := sessionRun{
		outs:   make([]*columnar.Chunk, K),
		reps:   make([]*Report, K),
		epochs: map[string]int{},
	}
	done := 0
	k.Go("setup", func(p *simclock.Proc) {
		if err := sess.Install(); err != nil {
			t.Error(err)
			return
		}
		g := tpch.Gen{SF: 0.002, Seed: 33}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := sess.UploadTable(p, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		ordRefs, err := sess.UploadTable(p, "tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Error(err)
			return
		}
		tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
		for i := 0; i < K; i++ {
			i := i
			k.Go(fmt.Sprintf("query%d", i), func(p *simclock.Proc) {
				defer func() {
					done++
					simenv.BroadcastKey(p, "test/done")
				}()
				scfg := DefaultStageConfig()
				scfg.Partitions = 2 + i%2
				scfg.BroadcastRowLimit = -1
				scfg.Exchange.Poll = 100 * time.Millisecond
				scfg.ExchangeLevels = levels
				out, rep, err := sess.RunSQLStaged(p, q12ExactSQL, tables, scfg)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				res.outs[i], res.reps[i] = out, rep
			})
		}
		for done < K {
			simenv.WaitNotifyKey(p, "test/done", 100*time.Millisecond)
		}
		// Epoch fence rows: every live query ran under its own query ID, so
		// the fence rows are disjoint and each sits at epoch 1.
		table := stagesTableName(sess.Config().FunctionName)
		for i := 1; i <= K; i++ {
			qid := fmt.Sprintf("q%d", i)
			v, err := dep.Dynamo.Get(p, table, epochKey(qid))
			if err != nil {
				t.Errorf("epoch row %s: %v", qid, err)
				continue
			}
			e, _, ok := parseEpochValue(v)
			if !ok {
				t.Errorf("epoch row %s: corrupt value %q", qid, v)
				continue
			}
			res.epochs[qid] = e
		}
		res.vend = p.Now()
	})
	k.Run()
	if k.Deadlocked() {
		t.Fatal("DES deadlocked")
	}
	return res
}

// TestSessionConcurrentStagedByteIdentical is the tentpole acceptance test:
// K=4 staged queries interleaved on ONE resident session — sharing the
// deployment, the admission budget, and the warm container pool, separated
// only by query ID, epoch, and per-query result queue — produce results
// byte-identical to sequential one-shot runs, for both exchange variants,
// deterministically across two seeded runs, and the admission cap is never
// exceeded.
func TestSessionConcurrentStagedByteIdentical(t *testing.T) {
	const K, maxInFlight = 4, 12
	// Sequential one-shot baseline on a fresh classic driver.
	d, tables, li, orders := stagedSetup(t, 0.002, 4, 2)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	oneShot := map[int]*columnar.Chunk{}
	for _, levels := range []int{1, 2} {
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		scfg.ExchangeLevels = levels
		out, _, err := d.RunSQLStaged(q12ExactSQL, tables, scfg)
		if err != nil {
			t.Fatalf("one-shot baseline (levels=%d): %v", levels, err)
		}
		chunksIdentical(t, out, want)
		oneShot[levels] = out
	}

	run := func(levels int) (sessionRun, *Session) {
		k := simclock.New()
		dep := NewSimulated(k, 71)
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.MaxInFlight = maxInFlight
		sess := NewSession(dep, cfg)
		return runSessionConcurrentQ12(t, sess, k, dep, levels, K), sess
	}
	for _, levels := range []int{1, 2} {
		r1, s1 := run(levels)
		r2, _ := run(levels)
		for i := 0; i < K; i++ {
			if r1.outs[i] == nil {
				t.Fatalf("levels=%d: query %d produced no result", levels, i)
			}
			chunksIdentical(t, r1.outs[i], oneShot[levels])
			chunksIdentical(t, r2.outs[i], r1.outs[i])
			if r1.reps[i].Duration != r2.reps[i].Duration || r1.reps[i].TotalCost != r2.reps[i].TotalCost {
				t.Errorf("levels=%d: query %d not deterministic: (%v, %v) vs (%v, %v)", levels, i,
					r1.reps[i].Duration, r1.reps[i].TotalCost, r2.reps[i].Duration, r2.reps[i].TotalCost)
			}
		}
		if r1.vend != r2.vend {
			t.Errorf("levels=%d: virtual end time not deterministic: %v vs %v", levels, r1.vend, r2.vend)
		}
		adm := s1.Admission()
		if adm.Capacity() != maxInFlight {
			t.Fatalf("levels=%d: capacity = %d, want %d", levels, adm.Capacity(), maxInFlight)
		}
		if adm.Peak() > maxInFlight {
			t.Errorf("levels=%d: admission peak %d exceeded cap %d", levels, adm.Peak(), maxInFlight)
		}
		if of := adm.Overflow(); of != 0 {
			t.Errorf("levels=%d: fault-free run admitted %d overflow invocations", levels, of)
		}
		if adm.Blocked() == 0 {
			t.Errorf("levels=%d: cap %d never blocked %d concurrent fleets — cap not binding, test too weak", levels, maxInFlight, K)
		}
		if len(r1.epochs) != K {
			t.Errorf("levels=%d: epoch rows = %v, want %d disjoint rows", levels, r1.epochs, K)
		}
		for qid, e := range r1.epochs {
			if e != 1 {
				t.Errorf("levels=%d: epoch[%s] = %d, want 1 (disjoint per-query fences)", levels, qid, e)
			}
		}
	}
}

// TestSessionChaosConcurrentQueries: two staged queries in flight on one
// session over a chaos deployment (transients, duplicates, throttles, cold
// spikes, one mid-run crash) still both finish with byte-correct results,
// deterministically. Recovery traffic is admitted past the cap rather than
// risking a token deadlock, so Overflow may be positive here — the
// fault-free bound is asserted in the test above.
func TestSessionChaosConcurrentQueries(t *testing.T) {
	run := func() ([]*columnar.Chunk, time.Duration, int) {
		k := simclock.New()
		dep := NewChaos(k, 71, chaosPlanQ12())
		cfg := DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		cfg.MaxInFlight = 10
		// Speculation is what recovers the mid-run crash — without it the
		// crashed worker's seal never arrives and its stage can't finish.
		cfg.Speculate = DefaultSpeculateConfig()
		// Two interleaved queries under a tight cap live much longer in
		// virtual time than the single-query chaos runs, so the default
		// 256-op retry budget drowns in injected receive timeouts alone.
		cfg.RetryBudget = 4096
		sess := NewSession(dep, cfg)
		r := runSessionConcurrentQ12(t, sess, k, dep, 0, 2)
		return r.outs, r.vend, dep.Faults.TotalInjected()
	}
	outs1, vend1, injected := run()
	outs2, vend2, _ := run()
	if injected == 0 {
		t.Fatal("chaos plan injected nothing")
	}
	g := tpch.Gen{SF: 0.002, Seed: 33}
	li := g.Generate()
	orders := g.OrdersFor(li)
	want := singleNode(t, q12ExactSQL, engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), li),
		"orders":   engine.NewMemSource(tpch.OrdersSchema(), orders),
	})
	for i := range outs1 {
		if outs1[i] == nil || outs2[i] == nil {
			t.Fatalf("query %d produced no result under chaos", i)
		}
		chunksIdentical(t, outs1[i], want)
		chunksIdentical(t, outs2[i], outs1[i])
	}
	if vend1 != vend2 {
		t.Errorf("chaos run not deterministic: virtual end %v vs %v", vend1, vend2)
	}
}

// TestSessionEpochFenceAcrossSessions: a second session on the same
// deployment restarts query numbering at q1, landing on the same queue name
// and fence row as the first session's q1 — the durable epoch counter keeps
// the runs in disjoint epochs anyway, and the repeat query's result stays
// byte-identical.
func TestSessionEpochFenceAcrossSessions(t *testing.T) {
	dep := NewLocal()
	env := simenv.NewImmediate()
	cfg := DefaultConfig()

	runOn := func(sess *Session) *columnar.Chunk {
		t.Helper()
		if err := sess.Install(); err != nil {
			t.Fatal(err)
		}
		g := tpch.Gen{SF: 0.002, Seed: 11}
		li := g.Generate()
		orders := g.OrdersFor(li)
		liRefs, err := sess.UploadTable(env, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Fatal(err)
		}
		ordRefs, err := sess.UploadTable(env, "tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
		if err != nil {
			t.Fatal(err)
		}
		scfg := DefaultStageConfig()
		scfg.Partitions = 2
		scfg.BroadcastRowLimit = -1
		out, _, err := sess.RunSQLStaged(env, q12ExactSQL, TableFiles{"lineitem": liRefs, "orders": ordRefs}, scfg)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	out1 := runOn(NewSession(dep, cfg))
	out2 := runOn(NewSession(dep, cfg))
	chunksIdentical(t, out2, out1)

	table := stagesTableName(DefaultConfig().FunctionName)
	v, err := dep.Dynamo.Get(env, table, epochKey("q1"))
	if err != nil {
		t.Fatal(err)
	}
	e, _, ok := parseEpochValue(v)
	if !ok || e != 2 {
		t.Fatalf("q1 fence after two sessions = %q (epoch %d), want epoch 2", v, e)
	}
}

// TestPerQueryQueueTeardown: each query collects on a private queue derived
// from the base name, deleted at query end — the deployment does not
// accumulate queues, and a zombie posting after teardown gets
// ErrNoSuchQueue rather than poisoning a later query.
func TestPerQueryQueueTeardown(t *testing.T) {
	d, tables, _, _ := stagedSetup(t, 0.002, 4, 2)
	cfg := DefaultStageConfig()
	cfg.Partitions = 2
	cfg.BroadcastRowLimit = -1
	if _, _, err := d.RunSQLStaged(q12ExactSQL, tables, cfg); err != nil {
		t.Fatal(err)
	}
	q1 := queryQueueName(d.cfg.ResultQueue, "q1")
	if err := d.dep.SQS.Send(d.env, q1, []byte("{}")); !errors.Is(err, sqs.ErrNoSuchQueue) {
		t.Errorf("zombie post to %s after teardown: err = %v, want ErrNoSuchQueue", q1, err)
	}
	// The base queue survives — it seeds the next query's derived name.
	if err := d.dep.SQS.Send(d.env, d.cfg.ResultQueue, []byte("{}")); err != nil {
		t.Errorf("base queue gone after query teardown: %v", err)
	}
}

// TestSessionResultCache: a repeated staged query is served from the result
// cache — byte-identical to the first run, no workers invoked — and both
// invalidation paths (by table, and the implicit clear on re-upload) force
// a fresh run.
func TestSessionResultCache(t *testing.T) {
	dep := NewLocal()
	env := simenv.NewImmediate()
	cfg := DefaultConfig()
	cfg.ResultCacheEntries = 4
	sess := NewSession(dep, cfg)
	if err := sess.Install(); err != nil {
		t.Fatal(err)
	}
	g := tpch.Gen{SF: 0.002, Seed: 11}
	li := g.Generate()
	orders := g.OrdersFor(li)
	liRefs, err := sess.UploadTable(env, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	ordRefs, err := sess.UploadTable(env, "tpch", "orders", orders, 2, lpq.WriterOptions{RowGroupRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tables := TableFiles{"lineitem": liRefs, "orders": ordRefs}
	scfg := DefaultStageConfig()
	scfg.Partitions = 2
	scfg.BroadcastRowLimit = -1

	out1, rep1, err := sess.RunSQLStaged(env, q12ExactSQL, tables, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CacheHit {
		t.Error("first run reported a cache hit")
	}
	out2, rep2, err := sess.RunSQLStaged(env, q12ExactSQL, tables, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.CacheHit {
		t.Error("second run missed the cache")
	}
	if rep2.Workers != 0 {
		t.Errorf("cache hit invoked %d workers", rep2.Workers)
	}
	chunksIdentical(t, out2, out1)
	if hits, misses := sess.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	sess.InvalidateTable("lineitem")
	if _, rep3, err := sess.RunSQLStaged(env, q12ExactSQL, tables, scfg); err != nil {
		t.Fatal(err)
	} else if rep3.CacheHit {
		t.Error("run after InvalidateTable still hit the cache")
	}

	// Re-uploading a table overwrites objects in place under the same file
	// references, so the upload clears the cache wholesale.
	if _, err := sess.UploadTable(env, "tpch", "lineitem", li, 4, lpq.WriterOptions{RowGroupRows: 2000}); err != nil {
		t.Fatal(err)
	}
	if _, rep4, err := sess.RunSQLStaged(env, q12ExactSQL, tables, scfg); err != nil {
		t.Fatal(err)
	} else if rep4.CacheHit {
		t.Error("run after re-upload still hit the cache")
	}
}
