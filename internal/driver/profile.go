package driver

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/obs"
)

// CostUSD prices an exact billed-cost attribution with the paper's price
// tables. LambdaMiBNs converts MiB·ns → GiB·s only here, at display time,
// so per-span sums stay integer-exact until the final multiplication.
func CostUSD(c obs.Cost) pricing.USD {
	gibSeconds := float64(c.LambdaMiBNs) / 1024 / 1e9
	return pricing.USD(gibSeconds)*pricing.LambdaGBSecond +
		pricing.USD(c.LambdaInvokes)*pricing.LambdaPerRequest +
		pricing.USD(c.S3Get)*pricing.S3Read +
		pricing.USD(c.S3Put)*pricing.S3Write +
		pricing.USD(c.S3List)*pricing.S3List +
		pricing.USD(c.SQSRequests)*pricing.SQSPerRequest +
		pricing.USD(c.DynamoReads)*pricing.DynamoRead +
		pricing.USD(c.DynamoWrites)*pricing.DynamoWrite
}

// StageProfile is the EXPLAIN ANALYZE record of one stage: wall-clock
// virtual extent, fleet size, and the stage subtree's exact billed cost
// plus data volumes parsed off its worker-invocation spans.
type StageProfile struct {
	StageID int
	Workers int
	// Launched and Sealed are offsets from query start (from StageStat).
	Launched   time.Duration
	Sealed     time.Duration
	Speculated int
	// Variant is the stage's resolved output-boundary exchange algorithm
	// ("1l-wc", "2l", ...); empty for the result stage. Regroup marks the
	// synthetic intermediate fleet of a multi-level boundary — StageID is
	// then the producing stage whose boundary it regroups.
	Variant string
	Regroup bool
	// Attempts counts the worker invocations traced under the stage
	// (original fleet + failure re-invocations + speculation backups).
	Attempts int
	// Rows is the stage's total output rows; BytesIn/BytesOut are the S3
	// bytes its workers read and wrote (exchange shuffle included).
	Rows     int64
	BytesIn  int64
	BytesOut int64
	// Cost is the stage subtree's exact billed attribution, USD its price.
	Cost obs.Cost
	USD  pricing.USD
}

// Profile is the query's EXPLAIN ANALYZE: per-stage records, the
// critical path through the span tree, and the whole-tree cost.
type Profile struct {
	QueryID  string
	Duration time.Duration
	Stages   []StageProfile
	// CriticalPath tiles [0, Duration] with the latency-bounding spans;
	// segment durations sum exactly to Duration.
	CriticalPath []obs.CriticalSegment
	// Cost aggregates the entire query subtree (driver + workers); USD
	// prices it. Matches the Report's meter deltas exactly (see the
	// trace determinism tests).
	Cost obs.Cost
	USD  pricing.USD
}

// Profile computes the query's execution profile from its trace. Returns
// nil when the report was produced without tracing.
func (rep *Report) Profile() *Profile {
	if rep.Trace == nil || rep.Span == 0 {
		return nil
	}
	spans := rep.Trace.Spans()
	p := &Profile{
		QueryID:      rep.QueryID,
		Duration:     rep.Duration,
		CriticalPath: obs.CriticalPath(spans, rep.Span),
		Cost:         obs.SubtreeCost(spans, rep.Span),
	}
	p.USD = CostUSD(p.Cost)
	for _, ss := range rep.StageStats {
		sp := StageProfile{
			StageID:    ss.StageID,
			Workers:    ss.Workers,
			Launched:   ss.Launched,
			Sealed:     ss.Sealed,
			Speculated: ss.Speculated,
			Variant:    ss.Variant,
			Regroup:    ss.Regroup,
		}
		if ss.Span != 0 {
			sp.Cost = obs.SubtreeCost(spans, ss.Span)
			sp.USD = CostUSD(sp.Cost)
			sp.Attempts, sp.Rows, sp.BytesIn, sp.BytesOut = invokeVolumes(spans, ss.Span)
		}
		p.Stages = append(p.Stages, sp)
	}
	return p
}

// invokeVolumes walks the subtree under root and aggregates the data
// volumes tagged on its worker-invocation spans.
func invokeVolumes(spans []obs.Span, root obs.SpanID) (attempts int, rows, in, out int64) {
	children := make(map[obs.SpanID][]obs.SpanID, len(spans))
	for _, s := range spans {
		if s.Parent != 0 {
			children[s.Parent] = append(children[s.Parent], s.ID)
		}
	}
	var walk func(obs.SpanID)
	walk = func(id obs.SpanID) {
		s := spans[id-1]
		if s.Kind == obs.KindInvoke {
			attempts++
			rows += tagInt64(s.Tags, "rows.out")
			in += tagInt64(s.Tags, "bytes.in")
			out += tagInt64(s.Tags, "bytes.out")
		}
		for _, ch := range children[id] {
			walk(ch)
		}
	}
	for _, ch := range children[root] {
		walk(ch)
	}
	return attempts, rows, in, out
}

func tagInt64(tags map[string]string, key string) int64 {
	n, _ := strconv.ParseInt(tags[key], 10, 64)
	return n
}

// RenderOptions configures WriteReport.
type RenderOptions struct {
	// Verbose adds the sorted per-worker processing times.
	Verbose bool
	// Profile adds the EXPLAIN ANALYZE stage table and critical path
	// (requires the report to carry a trace; silently skipped otherwise).
	Profile bool
}

// WriteReport renders the post-query report — the single shared renderer
// for the CLI and any tool that replays a Report. Layout: fleet/latency
// line, per-stage seal timing, billed-cost breakdown, resilience
// counters, then the optional profile and per-worker sections.
func WriteReport(w io.Writer, rep *Report, opts RenderOptions) {
	stages := ""
	if rep.Stages > 0 {
		stages = fmt.Sprintf("   stages: %d   epoch: %d", rep.Stages, rep.Epoch)
	}
	fmt.Fprintf(w, "workers: %d%s   latency: %v   invocation: %v   cold: %d   speculated: %d\n",
		rep.Workers, stages, rep.Duration.Round(time.Millisecond), rep.Invocation.Round(time.Millisecond),
		rep.ColdWorkers, rep.Speculated)
	for _, ss := range rep.StageStats {
		label := "stage"
		if ss.Regroup {
			label = "regroup"
		}
		boundary := ""
		if ss.Variant != "" {
			boundary = "   boundary " + ss.Variant
		}
		fmt.Fprintf(w, "  %s %d: %d workers   launched +%v   sealed +%v   speculated %d%s\n",
			label, ss.StageID, ss.Workers, ss.Launched.Round(time.Millisecond), ss.Sealed.Round(time.Millisecond), ss.Speculated, boundary)
	}
	fmt.Fprintf(w, "query cost: $%.6f\n", rep.TotalCost)
	for _, l := range sortedStringKeys(rep.CostDelta) {
		fmt.Fprintf(w, "  %-20s $%.6f\n", l, rep.CostDelta[l])
	}
	if rep.DriverRetries+rep.WorkerRetries > 0 || rep.FailureSeals > 0 {
		fmt.Fprintf(w, "retries: driver %d   worker %d   failure seals: %d\n",
			rep.DriverRetries, rep.WorkerRetries, rep.FailureSeals)
	}
	if len(rep.InjectedFaults) > 0 {
		fmt.Fprintln(w, "injected faults:")
		for _, k := range sortedStringKeys(rep.InjectedFaults) {
			fmt.Fprintf(w, "  %-24s %d\n", k, rep.InjectedFaults[k])
		}
	}
	if opts.Profile {
		writeProfile(w, rep)
	}
	if opts.Verbose {
		fmt.Fprintln(w, "worker processing times (sorted):")
		for i, t := range rep.WorkerProcessing {
			fmt.Fprintf(w, "  worker[%3d] %v\n", i, t.Round(time.Millisecond))
		}
	}
}

// writeProfile renders the EXPLAIN ANALYZE section of a traced report.
func writeProfile(w io.Writer, rep *Report) {
	p := rep.Profile()
	if p == nil {
		return
	}
	if len(p.Stages) > 0 {
		fmt.Fprintln(w, "stage profile:")
		fmt.Fprintf(w, "  %-6s %8s %8s %9s %12s %12s %12s %12s %12s\n",
			"stage", "boundary", "attempts", "wall", "rows", "bytes in", "bytes out", "billed $", "s3 gets")
		for _, sp := range p.Stages {
			wall := sp.Sealed - sp.Launched
			id := strconv.Itoa(sp.StageID)
			if sp.Regroup {
				id += "rg"
			}
			boundary := sp.Variant
			if boundary == "" {
				boundary = "-"
			}
			fmt.Fprintf(w, "  %-6s %8s %8d %9v %12d %12d %12d %12.6f %12d\n",
				id, boundary, sp.Attempts, wall.Round(time.Millisecond),
				sp.Rows, sp.BytesIn, sp.BytesOut, float64(sp.USD), sp.Cost.S3Get)
		}
	}
	fmt.Fprintf(w, "traced cost: $%.6f   (lambda %.3f GiB·s, %d s3 gets, %d s3 puts, %d sqs, %d dynamo)\n",
		float64(p.USD), float64(p.Cost.LambdaMiBNs)/1024/1e9,
		p.Cost.S3Get, p.Cost.S3Put, p.Cost.SQSRequests, p.Cost.DynamoReads+p.Cost.DynamoWrites)
	if len(p.CriticalPath) > 0 {
		fmt.Fprintln(w, "critical path:")
		spans := rep.Trace.Spans()
		// Offsets are relative to the query span's start; zero-length
		// segments carry no latency and are elided from the rendering.
		var base time.Duration
		if root, ok := rep.Trace.Span(rep.Span); ok {
			base = root.Start
		}
		for _, seg := range p.CriticalPath {
			if seg.Duration() == 0 {
				continue
			}
			name, kind := "?", ""
			if int(seg.Span) <= len(spans) && seg.Span > 0 {
				s := spans[seg.Span-1]
				name, kind = s.Name, string(s.Kind)
			}
			fmt.Fprintf(w, "  +%-10v %9v  %-6s %s\n",
				(seg.From - base).Round(time.Millisecond), seg.Duration().Round(time.Millisecond), kind, name)
		}
	}
}

func sortedStringKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
