package driver

import (
	"math"
	"testing"
	"time"

	"lambada/internal/awssim/pricing"
	"lambada/internal/engine"
	"lambada/internal/exchange"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/sqlfe"
	"lambada/internal/tpch"
)

// groupBySuppkeySQL has far more groups than Q1 — the case the exchange
// merge exists for.
const groupBySuppkeySQL = `
SELECT l_suppkey, SUM(l_extendedprice) AS total, COUNT(*) AS n, AVG(l_discount) AS ad
FROM lineitem
GROUP BY l_suppkey
ORDER BY l_suppkey`

func TestExchangedGroupByMatchesSingleNode(t *testing.T) {
	for _, variant := range []exchange.Variant{
		{Levels: 1, WriteCombining: false},
		{Levels: 2, WriteCombining: true},
	} {
		d, refs, data := localSetup(t, DefaultConfig(), 0.002, 9)
		plan, err := sqlfe.Parse(groupBySuppkeySQL)
		if err != nil {
			t.Fatal(err)
		}
		// Single-node reference through the engine.
		cat := engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema(), data)}
		refPlan, err := sqlfe.Parse(groupBySuppkeySQL)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Execute(refPlan, cat)
		if err != nil {
			t.Fatal(err)
		}

		xcfg := DefaultExchangeConfig()
		xcfg.Variant = variant
		got, rep, err := d.RunPlanExchanged(plan, "lineitem", refs, xcfg)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if got.NumRows() != want.NumRows() {
			t.Fatalf("%v: groups = %d, want %d", variant, got.NumRows(), want.NumRows())
		}
		for i := 0; i < want.NumRows(); i++ {
			if got.Column("l_suppkey").Int64s[i] != want.Column("l_suppkey").Int64s[i] {
				t.Fatalf("%v: row %d key mismatch", variant, i)
			}
			g, w := got.Column("total").Float64s[i], want.Column("total").Float64s[i]
			if math.Abs(g-w) > 1e-6*math.Max(1, w) {
				t.Errorf("%v: row %d total = %v, want %v", variant, i, g, w)
			}
			if got.Column("n").Int64s[i] != want.Column("n").Int64s[i] {
				t.Errorf("%v: row %d count mismatch", variant, i)
			}
			ga, wa := got.Column("ad").Float64s[i], want.Column("ad").Float64s[i]
			if math.Abs(ga-wa) > 1e-9 {
				t.Errorf("%v: row %d avg = %v, want %v", variant, i, ga, wa)
			}
		}
		if rep.Workers != 9 {
			t.Errorf("%v: workers = %d", variant, rep.Workers)
		}
		// The shuffle leaves request traces: write requests beyond the
		// table upload must have happened.
		if rep.CostDelta[pricing.LabelS3Write] <= 0 {
			t.Errorf("%v: no exchange writes recorded", variant)
		}
	}
}

func TestExchangedRejectsGlobalAggregate(t *testing.T) {
	d, refs, _ := localSetup(t, DefaultConfig(), 0.001, 2)
	plan, err := sqlfe.Parse("SELECT COUNT(*) AS n FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.RunPlanExchanged(plan, "lineitem", refs, DefaultExchangeConfig()); err == nil {
		t.Error("global aggregate accepted by exchange path")
	}
}

func TestExchangedGroupByDES(t *testing.T) {
	run := func() (int, time.Duration, float64) {
		k := simclock.New()
		dep := NewSimulated(k, 17)
		var rows int
		var dur time.Duration
		var cost float64
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			data := tpch.Gen{SF: 0.002, Seed: 23}.Generate()
			refs, err := d.UploadTable("tpch", "lineitem", data, 6, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			plan, err := sqlfe.Parse(`SELECT l_returnflag, COUNT(*) AS n FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`)
			if err != nil {
				t.Error(err)
				return
			}
			xcfg := DefaultExchangeConfig()
			xcfg.Poll = 100 * time.Millisecond
			out, rep, err := d.RunPlanExchanged(plan, "lineitem", refs, xcfg)
			if err != nil {
				t.Error(err)
				return
			}
			rows = out.NumRows()
			dur = rep.Duration
			cost = rep.TotalCost
			// Validate counts against the reference.
			var total int64
			for i := 0; i < out.NumRows(); i++ {
				total += out.Column("n").Int64s[i]
			}
			if total != int64(data.NumRows()) {
				t.Errorf("counts sum to %d, want %d", total, data.NumRows())
			}
		})
		k.Run()
		if k.Deadlocked() {
			t.Fatal("DES deadlocked")
		}
		return rows, dur, cost
	}
	r1, d1, c1 := run()
	r2, d2, c2 := run()
	if r1 != 3 {
		t.Errorf("groups = %d, want 3 return flags", r1)
	}
	if r1 != r2 || d1 != d2 || c1 != c2 {
		t.Error("exchanged DES run not deterministic")
	}
	if d1 <= 0 || d1 > 2*time.Minute {
		t.Errorf("virtual duration = %v", d1)
	}
}

func TestSplitExchangedShape(t *testing.T) {
	plan, err := sqlfe.Parse(groupBySuppkeySQL)
	if err != nil {
		t.Fatal(err)
	}
	cat := engine.Catalog{"lineitem": engine.NewMemSource(tpch.Schema())}
	opt, err := engine.Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	xp, err := engine.SplitExchanged(opt)
	if err != nil {
		t.Fatal(err)
	}
	if xp.Key != "l_suppkey" {
		t.Errorf("key = %q", xp.Key)
	}
	ws, err := xp.Worker.OutSchema()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Index(xp.Key) < 0 {
		t.Error("partition key missing from partial schema")
	}
	fs, err := xp.WorkerFinal.OutSchema()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"l_suppkey", "total", "n", "ad"} {
		if fs.Index(name) < 0 {
			t.Errorf("final schema missing %q (has %v)", name, fs)
		}
	}
}
