package driver

import (
	"math"
	"testing"
	"time"

	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

// nationRevenuePlan joins LINEITEM (big, on S3) with SUPPLIER (small,
// broadcast from the driver) and aggregates revenue per nation.
func nationRevenuePlan() engine.Plan {
	return &engine.OrderByPlan{
		Keys: []engine.OrderKey{{Column: "s_nationkey"}},
		In: &engine.AggregatePlan{
			GroupBy: []string{"s_nationkey"},
			Aggs: []engine.AggSpec{
				{Func: engine.AggSum, Arg: engine.NewBin(engine.OpMul, engine.Col("l_extendedprice"),
					engine.NewBin(engine.OpSub, engine.ConstFloat(1), engine.Col("l_discount"))), Name: "revenue"},
				{Func: engine.AggCount, Name: "n"},
			},
			In: &engine.JoinPlan{
				Left:     &engine.ScanPlan{Table: "lineitem"},
				Right:    &engine.ScanPlan{Table: "supplier"},
				LeftKey:  "l_suppkey",
				RightKey: "s_suppkey",
			},
		},
	}
}

func TestBroadcastJoinEndToEnd(t *testing.T) {
	d, refs, data := localSetup(t, DefaultConfig(), 0.002, 8)
	sup := tpch.Gen{SF: 0.002, Seed: 33}.Supplier()

	out, rep, err := d.RunPlanBroadcast(nationRevenuePlan(), "lineitem", refs,
		map[string]*columnar.Chunk{"supplier": sup})
	if err != nil {
		t.Fatal(err)
	}
	// Single-node reference.
	cat := engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), data),
		"supplier": engine.NewMemSource(tpch.SupplierSchema(), sup),
	}
	want, err := engine.Execute(nationRevenuePlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != want.NumRows() {
		t.Fatalf("nations = %d, want %d", out.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		if out.Column("s_nationkey").Int64s[i] != want.Column("s_nationkey").Int64s[i] {
			t.Fatalf("row %d nation mismatch", i)
		}
		a, b := out.Column("revenue").Float64s[i], want.Column("revenue").Float64s[i]
		if math.Abs(a-b) > 1e-6*b {
			t.Errorf("row %d revenue = %v, want %v", i, a, b)
		}
		if out.Column("n").Int64s[i] != want.Column("n").Int64s[i] {
			t.Errorf("row %d count mismatch", i)
		}
	}
	if rep.Workers != 8 {
		t.Errorf("workers = %d", rep.Workers)
	}
}

func TestBroadcastJoinDESDeterministic(t *testing.T) {
	run := func() (float64, time.Duration) {
		k := simclock.New()
		dep := NewSimulated(k, 51)
		var first float64
		var dur time.Duration
		k.Go("driver", func(p *simclock.Proc) {
			cfg := DefaultConfig()
			cfg.PollInterval = 50 * time.Millisecond
			d := New(dep, p, cfg)
			if err := d.Install(); err != nil {
				t.Error(err)
				return
			}
			g := tpch.Gen{SF: 0.002, Seed: 61}
			refs, err := d.UploadTable("tpch", "lineitem", g.Generate(), 6, lpq.WriterOptions{RowGroupRows: 2000})
			if err != nil {
				t.Error(err)
				return
			}
			out, rep, err := d.RunPlanBroadcast(nationRevenuePlan(), "lineitem", refs,
				map[string]*columnar.Chunk{"supplier": g.Supplier()})
			if err != nil {
				t.Error(err)
				return
			}
			first = out.Column("revenue").Float64s[0]
			dur = rep.Duration
		})
		k.Run()
		return first, dur
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Error("broadcast-join DES run not deterministic")
	}
	if r1 <= 0 {
		t.Errorf("revenue = %v", r1)
	}
}

// TestSQLJoinEndToEnd drives the full stack from SQL: sqlfe parses the
// INNER JOIN into a JoinPlan, the driver broadcasts the small side, and
// worker fragments run the join on the pipeline-graph scheduler.
func TestSQLJoinEndToEnd(t *testing.T) {
	d, refs, data := localSetup(t, DefaultConfig(), 0.002, 8)
	sup := tpch.Gen{SF: 0.002, Seed: 33}.Supplier()

	const joinSQL = `
SELECT s_nationkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, COUNT(*) AS n
FROM lineitem INNER JOIN supplier ON lineitem.l_suppkey = supplier.s_suppkey
GROUP BY s_nationkey
ORDER BY s_nationkey`
	out, rep, err := d.RunSQLBroadcast(joinSQL, "lineitem", refs,
		map[string]*columnar.Chunk{"supplier": sup})
	if err != nil {
		t.Fatal(err)
	}
	// Single-node reference over the same plan shape.
	cat := engine.Catalog{
		"lineitem": engine.NewMemSource(tpch.Schema(), data),
		"supplier": engine.NewMemSource(tpch.SupplierSchema(), sup),
	}
	want, err := engine.Execute(nationRevenuePlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != want.NumRows() {
		t.Fatalf("nations = %d, want %d", out.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		if out.Column("s_nationkey").Int64s[i] != want.Column("s_nationkey").Int64s[i] {
			t.Fatalf("row %d nation mismatch", i)
		}
		a, b := out.Column("revenue").Float64s[i], want.Column("revenue").Float64s[i]
		if math.Abs(a-b) > 1e-6*b {
			t.Errorf("row %d revenue = %v, want %v", i, a, b)
		}
		if out.Column("n").Int64s[i] != want.Column("n").Int64s[i] {
			t.Errorf("row %d count mismatch", i)
		}
	}
	if rep.Workers != 8 {
		t.Errorf("workers = %d", rep.Workers)
	}
}

func TestBroadcastMissingTableFails(t *testing.T) {
	d, refs, _ := localSetup(t, DefaultConfig(), 0.001, 2)
	// Plan references "supplier" but nothing is broadcast: caught at
	// driver-side optimization before any invocation.
	if _, _, err := d.RunPlan(nationRevenuePlan(), "lineitem", refs); err == nil {
		t.Error("join against missing broadcast table accepted")
	}
}
