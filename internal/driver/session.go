package driver

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/engine"
	"lambada/internal/invoke"
	"lambada/internal/lpq"
	"lambada/internal/netmodel"
	"lambada/internal/resilience"
	"lambada/internal/scan"
	"lambada/internal/stageplan"
)

// Session is the resident layer of the driver: one long-lived binding to a
// Deployment that owns the warm state shared across queries — the installed
// worker function (and its warm container pool), the epoch fence table, the
// shared admission controller, and the result cache — while every query run
// through it gets its own scheduler instance (query) with a private result
// queue, retry scope, and epoch. N staged queries can run concurrently on
// one Session from separate environments (DES processes or goroutines);
// Session state is mutex-protected and queries never share mutable state
// beyond the deployment's services, which are concurrency-safe by design.
//
// The classic Driver is now a thin façade over a Session bound to a single
// environment.
type Session struct {
	dep *Deployment
	cfg Config

	mu sync.Mutex
	// queryCounter numbers queries session-wide; the ID namespaces the
	// query's result queue, S3 prefixes, and epoch fence row.
	queryCounter int
	// epochAcquires counts acquireEpoch calls to pace the lazy TTL sweep.
	epochAcquires int

	// admission is the deployment-wide invocation budget (nil when
	// Config.MaxInFlight is 0: legacy per-query pacing).
	admission *invoke.Admission
	// cache memoizes staged query results by (plan fingerprint, table
	// files); nil when Config.ResultCacheEntries is 0.
	cache *resultCache
}

// NewSession returns a resident session with the normalized configuration.
// When cfg.MaxInFlight is positive the session installs its admission
// controller as the deployment's Lambda completion hook — run at most one
// admission-enabled session per deployment, or token accounting splits.
func NewSession(dep *Deployment, cfg Config) *Session {
	if cfg.FunctionName == "" {
		cfg.FunctionName = "lambada-worker"
	}
	if cfg.ResultQueue == "" {
		cfg.ResultQueue = "lambada-results"
	}
	if cfg.WorkerMemoryMiB == 0 {
		cfg.WorkerMemoryMiB = 1792
	}
	if cfg.FilesPerWorker == 0 {
		cfg.FilesPerWorker = 1
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = 25 * time.Millisecond
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 10 * time.Minute
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.Region == "" {
		cfg.Region = netmodel.RegionEU
	}
	if cfg.EpochTTL == 0 {
		cfg.EpochTTL = 24 * time.Hour
	}
	if cfg.EpochGCInterval == 0 {
		cfg.EpochGCInterval = 64
	}
	if dep.Deterministic {
		// DES processes must stay single-threaded; the shaper models the
		// timing effect of scan concurrency instead.
		cfg.Scan.DoubleBuffer = false
		cfg.Scan.ParallelColumns = false
		cfg.Scan.MetaPrefetch = false
		cfg.Scan.ParallelFiles = 1
		cfg.PipelineParallelism = 1
	}
	s := &Session{dep: dep, cfg: cfg}
	if cfg.ResultCacheEntries > 0 {
		s.cache = newResultCache(cfg.ResultCacheEntries)
	}
	if cfg.MaxInFlight > 0 {
		s.admission = invoke.NewAdmission(cfg.MaxInFlight,
			invoke.DriverPacing(cfg.Region, cfg.InvokeThreads),
			cfg.FunctionName, cfg.PollInterval)
		// Exact release accounting: one token back per settling container,
		// crash paths included — the hook fires wherever the Lambda
		// service's running gauge decrements.
		adm := s.admission
		dep.Lambda.SetCompletionHook(func(env simenv.Env) { adm.Release(env, 1) })
	}
	return s
}

// Config returns the session's normalized configuration.
func (d *Session) Config() Config { return d.cfg }

// Deployment returns the bound deployment.
func (d *Session) Deployment() *Deployment { return d.dep }

// Admission returns the shared admission controller (nil when MaxInFlight
// is 0).
func (d *Session) Admission() *invoke.Admission { return d.admission }

// Install registers the worker function and creates the base result queue —
// the installation step of the usage model (Figure 2), done once per
// session. Individual queries derive their own queues from the base name.
func (d *Session) Install() error {
	d.dep.SQS.CreateQueue(d.cfg.ResultQueue)
	return d.dep.Lambda.CreateFunction(d.cfg.FunctionName, d.cfg.WorkerMemoryMiB, d.cfg.Timeout, d.workerHandler)
}

// retryBudget resolves Config.RetryBudget into a fresh per-scope budget.
func (d *Session) retryBudget() *resilience.Budget {
	n := d.cfg.RetryBudget
	if n == 0 {
		n = 256
	}
	if n < 0 {
		return nil // unlimited
	}
	return resilience.NewBudget(n)
}

// newRetryScope returns a scope whose backoff jitter stream is derived
// from seed — distinct seeds decorrelate concurrent scopes while staying
// reproducible across runs.
func (d *Session) newRetryScope(seed int64) *retryScope {
	s := &retryScope{budget: d.retryBudget(), stats: &resilience.Stats{}}
	s.policy = resilience.Policy{Budget: s.budget, Stats: s.stats, Seed: seed, Trace: d.dep.Trace}
	return s
}

// bumpEpochAcquires counts one epoch acquisition session-wide and reports
// whether this one should run the lazy TTL sweep.
func (d *Session) bumpEpochAcquires() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epochAcquires++
	return d.epochAcquires%d.cfg.EpochGCInterval == 0
}

// query is one per-query scheduler instance carved out of the old
// monolithic Driver: the driver-side state of a single query running on a
// resident session. Its cfg is the session's with ResultQueue rewritten to
// the query-private queue, so every driver- and payload-side reference
// routes automatically; the receiver is named d so the run/stage/exchange
// method bodies moved here read unchanged.
type query struct {
	s   *Session
	dep *Deployment
	cfg Config
	env simenv.Env
	// id is the session-unique query ID ("q1", "q2", ...).
	id string

	// retry is this query's driver-side retry scope.
	retry *retryScope
	// workerRetries accumulates the substrate retries this query's workers
	// reported in their completion messages.
	workerRetries int64
}

// queryQueueName derives a query's private result-queue name.
func queryQueueName(base, queryID string) string { return base + "-" + queryID }

// newQuery opens a per-query scheduler: next session-wide ID, a private
// result queue (created empty; per-query routing is what lets N schedulers
// collect concurrently without destroying each other's completions), and a
// fresh retry scope.
func (s *Session) newQuery(env simenv.Env) *query {
	s.mu.Lock()
	s.queryCounter++
	n := s.queryCounter
	s.mu.Unlock()
	cfg := s.cfg
	id := fmt.Sprintf("q%d", n)
	cfg.ResultQueue = queryQueueName(s.cfg.ResultQueue, id)
	s.dep.SQS.CreateQueue(cfg.ResultQueue)
	q := &query{s: s, dep: s.dep, cfg: cfg, env: env, id: id}
	q.retry = s.newRetryScope(-1)
	return q
}

// close tears down the query's private queue. A zombie worker posting to
// the deleted queue gets a harmless ErrNoSuchQueue; a later same-named
// query (fresh driver restart reusing the counter) starts from an empty
// queue either way, and its epoch fence discards any zombie that does land.
func (d *query) close() {
	d.dep.SQS.DeleteQueue(d.cfg.ResultQueue)
}

// ---- result cache ----

// resultCache memoizes staged query results by (plan fingerprint, table
// files). Entries hold the result as an lpq blob — the same wire form
// workers post — so a hit decodes to a chunk byte-identical to a fresh
// run's. Eviction is FIFO, which is deterministic; invalidation is by
// table name (UploadTable and the service's invalidate endpoint) or
// wholesale.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]cacheEntry
	order   []string
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	blob   []byte
	tables map[string]bool
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: make(map[string]cacheEntry)}
}

func (c *resultCache) lookup(key string) ([]byte, bool) {
	if c == nil || key == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		return e.blob, true
	}
	c.misses++
	return nil, false
}

func (c *resultCache) store(key string, tables TableFiles, chunk *columnar.Chunk) {
	if c == nil || key == "" || chunk == nil {
		return
	}
	blob, err := lpq.WriteFile(chunk.Schema, lpq.WriterOptions{}, chunk)
	if err != nil {
		return
	}
	names := make(map[string]bool, len(tables))
	for name := range tables {
		names[name] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		for len(c.order) >= c.max {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
		c.order = append(c.order, key)
	}
	c.entries[key] = cacheEntry{blob: blob, tables: names}
}

func (c *resultCache) invalidateTable(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.order[:0]
	for _, key := range c.order {
		if c.entries[key].tables[name] {
			delete(c.entries, key)
			continue
		}
		kept = append(kept, key)
	}
	c.order = kept
}

func (c *resultCache) clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]cacheEntry)
	c.order = nil
}

func (c *resultCache) stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey builds the (plan fingerprint, table files) cache key. It must
// run before Decompose/SplitDistributed mutate the plan. Empty ("") means
// uncacheable — caching then silently skips.
func (d *Session) cacheKey(plan engine.Plan, tables TableFiles) string {
	if d.cache == nil {
		return ""
	}
	fp, err := stageplan.Fingerprint(plan)
	if err != nil {
		return ""
	}
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(fp)
	for _, name := range names {
		b.WriteByte(';')
		b.WriteString(name)
		b.WriteByte('=')
		for _, f := range tables[name] {
			b.WriteByte(',')
			b.WriteString(f.Bucket)
			b.WriteByte('/')
			b.WriteString(f.Key)
		}
	}
	return b.String()
}

// InvalidateTable drops every cached result that read the named table.
func (d *Session) InvalidateTable(name string) { d.cache.invalidateTable(name) }

// InvalidateResultCache drops every cached result.
func (d *Session) InvalidateResultCache() { d.cache.clear() }

// CacheStats returns cumulative result-cache hits and misses.
func (d *Session) CacheStats() (hits, misses uint64) { return d.cache.stats() }

// ---- session-level query API ----
// Each call opens a per-query scheduler on the caller's environment, runs
// it, and tears its queue down; N callers may run concurrently.

// RunSQL parses and runs a SQL query over one table.
func (d *Session) RunSQL(env simenv.Env, sql, table string, files []scan.FileRef) (*columnar.Chunk, *Report, error) {
	return d.RunSQLBroadcast(env, sql, table, files, nil)
}

// RunSQLBroadcast is RunSQL with extra driver-side broadcast tables.
func (d *Session) RunSQLBroadcast(env simenv.Env, sql, table string, files []scan.FileRef, broadcast map[string]*columnar.Chunk) (*columnar.Chunk, *Report, error) {
	plan, err := parseSQL(sql)
	if err != nil {
		return nil, nil, err
	}
	return d.RunPlanBroadcast(env, plan, table, files, broadcast)
}

// RunPlan runs an engine plan over one table.
func (d *Session) RunPlan(env simenv.Env, plan engine.Plan, table string, files []scan.FileRef) (*columnar.Chunk, *Report, error) {
	return d.RunPlanBroadcast(env, plan, table, files, nil)
}

// RunPlanBroadcast runs an engine plan with broadcast tables.
func (d *Session) RunPlanBroadcast(env simenv.Env, plan engine.Plan, table string, files []scan.FileRef, broadcast map[string]*columnar.Chunk) (*columnar.Chunk, *Report, error) {
	q := d.newQuery(env)
	defer q.close()
	return q.runPlan(plan, table, files, broadcast)
}

// RunPlanExchanged runs a distributed plan whose workers shuffle through
// the S3 exchange.
func (d *Session) RunPlanExchanged(env simenv.Env, plan engine.Plan, table string, files []scan.FileRef, xcfg ExchangeConfig) (*columnar.Chunk, *Report, error) {
	q := d.newQuery(env)
	defer q.close()
	return q.runPlanExchanged(plan, table, files, xcfg)
}

// RunSQLStaged parses and runs a SQL query as a staged distributed plan.
func (d *Session) RunSQLStaged(env simenv.Env, sql string, tables TableFiles, cfg StageConfig) (*columnar.Chunk, *Report, error) {
	plan, err := parseSQL(sql)
	if err != nil {
		return nil, nil, err
	}
	return d.RunPlanStaged(env, plan, tables, cfg)
}

// RunPlanStaged runs a stage-decomposed plan on the session, consulting the
// result cache first: a hit returns the memoized result (byte-identical to
// a fresh run) without touching the deployment.
func (d *Session) RunPlanStaged(env simenv.Env, plan engine.Plan, tables TableFiles, cfg StageConfig) (*columnar.Chunk, *Report, error) {
	key := d.cacheKey(plan, tables)
	if blob, ok := d.cache.lookup(key); ok {
		c, err := decodeChunk(blob)
		if err == nil {
			return c, &Report{CacheHit: true}, nil
		}
		// An undecodable entry is a bug, but never worth failing the query
		// over: fall through to a fresh run that overwrites it.
	}
	q := d.newQuery(env)
	defer q.close()
	res, rep, err := q.runPlanStaged(plan, tables, cfg)
	if err == nil {
		d.cache.store(key, tables, res)
	}
	return res, rep, err
}
