package engine

import (
	"math"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func TestPlanJSONRoundTripQ1(t *testing.T) {
	src := NewMemSource(tpch.Schema(), tpch.Gen{SF: 0.001, Seed: 3}.Generate())
	cat := Catalog{"lineitem": src}
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if Explain(back) != Explain(plan) {
		t.Errorf("explain mismatch:\n%s\nvs\n%s", Explain(back), Explain(plan))
	}
	// Both must produce identical results.
	a, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(back, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	for j := range a.Columns {
		for i := 0; i < a.NumRows(); i++ {
			if av, bv := a.Columns[j].Float64At(i), b.Columns[j].Float64At(i); math.Abs(av-bv) > 1e-9*math.Max(1, math.Abs(av)) {
				t.Fatalf("col %d row %d differ: %v vs %v", j, i, av, bv)
			}
		}
	}
}

func TestPlanJSONInfinitePruneBounds(t *testing.T) {
	scan := &ScanPlan{
		Table:       "t",
		TableSchema: tpch.Schema(),
		Prune: []lpq.Predicate{
			{Column: "l_shipdate", Min: math.Inf(-1), Max: 100},
			{Column: "l_quantity", Min: 5, Max: math.Inf(1)},
		},
	}
	data, err := MarshalPlan(scan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	bs := back.(*ScanPlan)
	if !math.IsInf(bs.Prune[0].Min, -1) || bs.Prune[0].Max != 100 {
		t.Errorf("prune[0] = %+v", bs.Prune[0])
	}
	if bs.Prune[1].Min != 5 || !math.IsInf(bs.Prune[1].Max, 1) {
		t.Errorf("prune[1] = %+v", bs.Prune[1])
	}
}

func TestPlanJSONAllNodeKinds(t *testing.T) {
	plan := &LimitPlan{
		N: 3,
		In: &OrderByPlan{
			Keys: []OrderKey{{Column: "y", Desc: true}},
			In: &ProjectPlan{
				Exprs: []Expr{&Not{E: NewBin(OpGT, Col("x"), ConstFloat(1.5))}},
				Names: []string{"y"},
				In: &FilterPlan{
					Pred: NewBin(OpNE, Col("x"), ConstInt(0)),
					In:   &ScanPlan{Table: "t"},
				},
			},
		},
	}
	data, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if Explain(back) != Explain(plan) {
		t.Errorf("mismatch:\n%s\nvs\n%s", Explain(back), Explain(plan))
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPlan([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := UnmarshalPlan([]byte(`{"kind":"mystery"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := UnmarshalPlan([]byte(`{"kind":"filter"}`)); err == nil {
		t.Error("filter without input accepted")
	}
}

// TestPlanJSONStageFragmentShapes round-trips the fragment shapes the
// stage planner emits: a partial aggregate over a join of two boundary
// scans (multi-column keys, resolved schemas) and a final merge with the
// AVG-recombining projection.
func TestPlanJSONStageFragmentShapes(t *testing.T) {
	boundary := func(table string, fields ...columnar.Field) *ScanPlan {
		return &ScanPlan{Table: table, TableSchema: columnar.NewSchema(fields...)}
	}
	joinStage := &AggregatePlan{
		GroupBy: []string{"g"},
		Aggs: []AggSpec{
			{Func: AggCount, Name: "__p0_cnt_n"},
			{Func: AggSum, Arg: Col("v"), Name: "__p1_sum_s"},
		},
		In: &JoinPlan{
			Left: boundary("__stage0",
				columnar.Field{Name: "k1", Type: columnar.Int64},
				columnar.Field{Name: "k2", Type: columnar.Int64},
				columnar.Field{Name: "v", Type: columnar.Float64},
			),
			Right: boundary("__stage1",
				columnar.Field{Name: "r1", Type: columnar.Int64},
				columnar.Field{Name: "r2", Type: columnar.Int64},
				columnar.Field{Name: "g", Type: columnar.Int64},
			),
			LeftKeys:  []string{"k1", "k2"},
			RightKeys: []string{"r1", "r2"},
		},
	}
	finalStage := &ProjectPlan{
		Exprs: []Expr{Col("g"), Col("__p0_cnt_n"), NewBin(OpDiv, Col("__p1_sum_s"), Col("__p0_cnt_n"))},
		Names: []string{"g", "n", "avg_v"},
		In: &AggregatePlan{
			GroupBy: []string{"g"},
			Aggs: []AggSpec{
				{Func: AggSum, Arg: Col("__p0_cnt_n"), Name: "__p0_cnt_n"},
				{Func: AggSum, Arg: Col("__p1_sum_s"), Name: "__p1_sum_s"},
			},
			In: boundary("__stage2",
				columnar.Field{Name: "g", Type: columnar.Int64},
				columnar.Field{Name: "__p0_cnt_n", Type: columnar.Int64},
				columnar.Field{Name: "__p1_sum_s", Type: columnar.Float64},
			),
		},
	}
	for _, frag := range []Plan{joinStage, finalStage} {
		raw, err := MarshalPlan(frag)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalPlan(raw)
		if err != nil {
			t.Fatal(err)
		}
		raw2, err := MarshalPlan(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Fatalf("fragment round trip differs:\n%s\n%s", raw, raw2)
		}
		ws, err := frag.OutSchema()
		if err != nil {
			t.Fatal(err)
		}
		bs, err := back.OutSchema()
		if err != nil {
			t.Fatal(err)
		}
		if !ws.Equal(bs) {
			t.Fatalf("schema after round trip = %v, want %v", bs, ws)
		}
	}
}
