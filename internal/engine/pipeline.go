package engine

// This file is the pipeline-graph scheduler: the one executor behind both
// Execute and ExecuteParallel. A planner pass (compileGraph) decomposes any
// plan into a DAG of pipelines, each a streamable chain — a scan source (or
// the materialized output of an upstream pipeline) followed by fused
// filter/projection/join-probe stages — terminated by a breaker sink:
//
//	collect    materialize the stream in sequence order (also the join
//	           build side and the query result)
//	aggregate  partition-parallel group-by (aggBuilder partials folded in
//	           sequence order)
//	sort       collect, then sortChunk
//	limit      stream until N rows arrived in contiguous sequence order,
//	           then cancel the scan (limit pushdown into the sink)
//
// Dependency edges order the DAG: a join's build pipeline completes (and
// its hash table seals) before the probe pipeline starts; a breaker's
// output node completes before the pipeline it feeds. The scheduler runs
// ready nodes as they unblock, each fanning its morsels out to N pipeline
// workers. N = 1 runs every node inline on the caller's goroutine — the
// serial executor is literally the parallel one at parallelism 1, and in
// deterministic (DES) deployments no goroutine is ever spawned.
//
// Determinism: every morsel carries the sequence number of its position in
// the serial delivery order. Collect sinks reassemble output in sequence
// order; the aggregate sink folds per-morsel partials in sequence order
// (float sums combine identically); the limit sink takes the first N rows
// in sequence order. All results are therefore byte-identical regardless
// of worker count or scheduling.
//
// Chunk recycling: gathered filter and join-probe outputs feeding an
// aggregate sink are allocated from a per-node columnar.Pool and recycled
// at the breaker, once the morsel is folded into the hash table (see the
// ownership contract on columnar.Pool). Sinks that keep their chunks
// (collect, sort, limit) never pool.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lambada/internal/columnar"
)

// sinkKind names a pipeline breaker.
type sinkKind uint8

const (
	sinkCollect sinkKind = iota
	sinkAgg
	sinkSort
	sinkLimit
)

// stage is one fused non-breaking operator of a pipeline.
type stage struct {
	filter Expr             // filter stage when non-nil
	exprs  []Expr           // projection stage when non-nil
	schema *columnar.Schema // projection output schema (precomputed)
	probe  *probeStage      // join-probe stage when non-nil
}

// probeStage probes morsels against the sealed hash table of a completed
// build pipeline.
type probeStage struct {
	build       *pnode // node materializing the build (right) side
	table       *joinTable
	leftKeyIdx  []int            // key positions in the probe-side chunk
	buildKeyIdx []int            // key positions in the build chunk
	rightCols   []int            // build columns emitted (right minus keys)
	outSchema   *columnar.Schema // probe output schema
	nLeft       int
}

// pnode is one pipeline of the graph: source, fused stages, breaker sink.
type pnode struct {
	id int

	// Source: either a scan ...
	scan *ScanPlan
	src  Source
	// ... or the materialized output of an upstream breaker.
	input *pnode

	stages []stage
	deps   []*pnode // nodes that must complete first (input, join builds)

	sink      sinkKind
	agg       *AggregatePlan   // sinkAgg
	aggIn     *columnar.Schema // aggregate input schema
	keys      []OrderKey       // sinkSort
	limit     int              // sinkLimit
	outSchema *columnar.Schema

	out *columnar.Chunk // materialized result, set when the node completes
}

// graph is a compiled plan: pipelines in dependency (topological) order —
// compileGraph appends every dependency before its dependent.
type graph struct {
	cat   Catalog
	nodes []*pnode
}

// compileGraph decomposes a resolved plan into its pipeline DAG.
func compileGraph(p Plan, cat Catalog) (*graph, *pnode, error) {
	g := &graph{cat: cat}
	root, err := g.node(p)
	if err != nil {
		return nil, nil, err
	}
	return g, root, nil
}

// node compiles the subplan rooted at p into a pipeline whose materialized
// output equals the subplan's result.
func (g *graph) node(p Plan) (*pnode, error) {
	n := &pnode{sink: sinkCollect, limit: -1}
	chainIn := p
	switch t := p.(type) {
	case *AggregatePlan:
		n.sink, n.agg, chainIn = sinkAgg, t, t.In
		in, err := t.In.OutSchema()
		if err != nil {
			return nil, err
		}
		n.aggIn = in
	case *OrderByPlan:
		n.sink, n.keys, chainIn = sinkSort, t.Keys, t.In
	case *LimitPlan:
		n.sink, n.limit, chainIn = sinkLimit, t.N, t.In
	}
	schema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	n.outSchema = schema
	if err := g.chain(chainIn, n); err != nil {
		return nil, err
	}
	n.id = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n, nil
}

// chain compiles the streamable operator chain below a sink: it walks down
// through Filter/Project/Join nodes to the pipeline's source (a scan, or a
// nested breaker that becomes an input node), then records the stages in
// execution order. Join probe sides continue the chain; build sides become
// dependency nodes.
func (g *graph) chain(p Plan, n *pnode) error {
	var ops []Plan
	cur := p
walk:
	for {
		switch t := cur.(type) {
		case *ScanPlan:
			src := g.cat[t.Table]
			if src == nil {
				return fmt.Errorf("engine: unknown table %q", t.Table)
			}
			n.scan, n.src = t, src
			break walk
		case *FilterPlan:
			ops = append(ops, t)
			cur = t.In
		case *ProjectPlan:
			ops = append(ops, t)
			cur = t.In
		case *JoinPlan:
			ops = append(ops, t)
			cur = t.Left
		case *AggregatePlan, *OrderByPlan, *LimitPlan:
			sub, err := g.node(cur)
			if err != nil {
				return err
			}
			n.input = sub
			n.deps = append(n.deps, sub)
			break walk
		default:
			return fmt.Errorf("engine: unknown plan node %T", cur)
		}
	}
	if n.scan != nil && n.scan.Filter != nil {
		// A filterable source evaluates the scan filter itself (late
		// materialization); only re-filter chunks from plain sources.
		if _, ok := n.src.(FilterableSource); !ok {
			n.stages = append(n.stages, stage{filter: n.scan.Filter})
		}
	}
	for i := len(ops) - 1; i >= 0; i-- {
		switch op := ops[i].(type) {
		case *FilterPlan:
			n.stages = append(n.stages, stage{filter: op.Pred})
		case *ProjectPlan:
			schema, err := op.OutSchema()
			if err != nil {
				return err
			}
			n.stages = append(n.stages, stage{exprs: op.Exprs, schema: schema})
		case *JoinPlan:
			ps, err := g.probeStage(op)
			if err != nil {
				return err
			}
			n.deps = append(n.deps, ps.build)
			n.stages = append(n.stages, stage{probe: ps})
		}
	}
	return nil
}

// probeStage compiles a join: the build side becomes its own (collect)
// pipeline, the probe metadata is precomputed against the resolved schemas.
func (g *graph) probeStage(j *JoinPlan) (*probeStage, error) {
	outSchema, err := j.OutSchema() // validates key lists and types
	if err != nil {
		return nil, err
	}
	ls, err := j.Left.OutSchema()
	if err != nil {
		return nil, err
	}
	rs, err := j.Right.OutSchema()
	if err != nil {
		return nil, err
	}
	lk, rk := j.keyNames()
	ps := &probeStage{outSchema: outSchema, nLeft: ls.Len()}
	isKey := make(map[int]bool, len(rk))
	for i := range lk {
		ps.leftKeyIdx = append(ps.leftKeyIdx, ls.Index(lk[i]))
		ri := rs.Index(rk[i])
		ps.buildKeyIdx = append(ps.buildKeyIdx, ri)
		isKey[ri] = true
	}
	for i := range rs.Fields {
		if !isKey[i] {
			ps.rightCols = append(ps.rightCols, i)
		}
	}
	build, err := g.node(j.Right)
	if err != nil {
		return nil, err
	}
	ps.build = build
	return ps, nil
}

// run executes the graph and returns the root's materialized output.
// workers is the morsel-parallelism of each pipeline; 1 runs everything
// inline on the caller's goroutine (no goroutines spawned — required in
// DES deployments).
func (g *graph) run(root *pnode, workers int) (*columnar.Chunk, error) {
	if workers <= 1 {
		for _, n := range g.nodes {
			if err := runNode(n, 1); err != nil {
				return nil, err
			}
		}
		return root.out, nil
	}

	// Dependency-driven scheduling: launch every node whose dependencies
	// completed; each launched node fans its morsels out to `workers`
	// pipeline goroutines. Results are deterministic regardless of the
	// schedule, and the error reported is the one from the earliest
	// pipeline in plan order — the error the serial executor would hit.
	indeg := make([]int, len(g.nodes))
	dependents := make([][]*pnode, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.id] = len(n.deps)
		for _, d := range n.deps {
			dependents[d.id] = append(dependents[d.id], n)
		}
	}
	errs := make([]error, len(g.nodes))
	var mu sync.Mutex
	var wg sync.WaitGroup
	failed := false
	var launch func(n *pnode)
	launch = func(n *pnode) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			skip := failed
			mu.Unlock()
			if skip {
				return
			}
			err := runNode(n, workers)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs[n.id] = err
				failed = true
				return
			}
			for _, d := range dependents[n.id] {
				indeg[d.id]--
				if indeg[d.id] == 0 {
					launch(d)
				}
			}
		}()
	}
	mu.Lock()
	for _, n := range g.nodes {
		if indeg[n.id] == 0 {
			launch(n)
		}
	}
	mu.Unlock()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return root.out, nil
}

// pipeScratch is one worker's reusable per-morsel state.
type pipeScratch struct {
	sel    []int // filter selection vector
	lsel   []int // probe-side match rows
	rsel   []int // build-side match rows
	keyBuf []byte
	owned  []*columnar.Chunk // pooled chunks to recycle at the breaker
}

// runNode seals the node's join tables, streams its morsels through the
// stages at the given parallelism, and materializes the sink.
func runNode(n *pnode, workers int) error {
	for i := range n.stages {
		if ps := n.stages[i].probe; ps != nil {
			ps.table = buildJoinTable(ps.build.out, ps.buildKeyIdx, workers)
		}
	}

	sk, pool := newSink(n)
	scratches := make([]pipeScratch, workers)
	handle := func(w int, m morsel) error {
		sc := &scratches[w]
		sc.owned = sc.owned[:0]
		out, err := applyStages(m.c, n.stages, sc, pool)
		if err != nil {
			return err
		}
		return sk.add(w, m.seq, out, sc.owned, pool)
	}

	var err error
	if workers == 1 || n.input != nil {
		err = n.streamSerial(handle)
	} else {
		err = forEachMorsel(n, workers, handle)
	}
	if err != nil {
		return err
	}
	n.out, err = sk.finalize()
	return err
}

// streamSerial runs the node's morsels inline, in order, on the caller's
// goroutine. errStopPipeline from the sink cancels the scan cleanly.
func (n *pnode) streamSerial(handle func(w int, m morsel) error) error {
	var seq uint64
	err := n.stream(func(c *columnar.Chunk) error {
		err := handle(0, morsel{seq: seq, c: c})
		seq++
		return err
	})
	if errors.Is(err, errStopPipeline) {
		return nil
	}
	return err
}

// stream yields the node's input morsels in sequence order: the upstream
// breaker's materialized chunk, or the scan.
func (n *pnode) stream(yield func(*columnar.Chunk) error) error {
	if n.input != nil {
		return yield(n.input.out)
	}
	if n.scan.Filter != nil {
		if fs, ok := n.src.(FilterableSource); ok {
			return fs.ScanFiltered(n.scan.Projection, n.scan.Prune, n.scan.Filter, yield)
		}
	}
	return n.src.Scan(n.scan.Projection, n.scan.Prune, yield)
}

// applyStages runs a morsel through the pipeline's stages: the shared
// applyFilter kernel for filter stages, vectorized expression evaluation
// for projections, and hash-table probe with selection-vector gather for
// joins. Gathered outputs are allocated from pool when non-nil (appended
// to sc.owned for the caller to recycle once the morsel is consumed).
func applyStages(c *columnar.Chunk, stages []stage, sc *pipeScratch, pool *columnar.Pool) (*columnar.Chunk, error) {
	for i := range stages {
		st := &stages[i]
		switch {
		case st.filter != nil:
			fc, s, pooled, err := applyFilter(c, st.filter, sc.sel, pool)
			if err != nil {
				return nil, err
			}
			c, sc.sel = fc, s
			if pooled {
				sc.owned = append(sc.owned, fc)
			}
		case st.probe != nil:
			ps := st.probe
			sc.lsel, sc.rsel, sc.keyBuf = ps.table.probeChunk(c, ps.leftKeyIdx, sc.lsel[:0], sc.rsel[:0], sc.keyBuf)
			var out *columnar.Chunk
			if pool != nil {
				out = pool.GetChunk(ps.outSchema, len(sc.lsel))
				sc.owned = append(sc.owned, out)
			} else {
				out = columnar.NewChunk(ps.outSchema, len(sc.lsel))
			}
			for j := 0; j < ps.nLeft; j++ {
				out.Columns[j].AppendGather(c.Columns[j], sc.lsel)
			}
			build := ps.table.build
			for oj, bj := range ps.rightCols {
				out.Columns[ps.nLeft+oj].AppendGather(build.Columns[bj], sc.rsel)
			}
			c = out
		default:
			out := &columnar.Chunk{Schema: st.schema}
			for _, e := range st.exprs {
				v, err := e.Eval(c)
				if err != nil {
					return nil, err
				}
				out.Columns = append(out.Columns, v)
			}
			c = out
		}
	}
	return c, nil
}

// morsel is one input chunk tagged with its serial delivery position.
type morsel struct {
	seq uint64
	c   *columnar.Chunk
}

var (
	errMorselCanceled = errors.New("engine: morsel pipeline canceled")
	// errStopPipeline is the limit sink's early-exit signal: stop the scan,
	// no error.
	errStopPipeline = errors.New("engine: pipeline satisfied")
)

// seqError remembers the earliest-sequence failure so parallel runs report
// the same error the serial executor would have hit first.
type seqError struct {
	mu  sync.Mutex
	seq uint64
	err error
}

func (e *seqError) record(seq uint64, err error) {
	e.mu.Lock()
	if e.err == nil || seq < e.seq {
		e.seq, e.err = seq, err
	}
	e.mu.Unlock()
}

func (e *seqError) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// forEachMorsel streams the node's source through a channel and fans the
// morsels out to `workers` goroutines calling handle(workerIdx, m). The
// first error (by sequence) cancels the scan and is returned;
// errStopPipeline cancels without error.
func forEachMorsel(n *pnode, workers int, handle func(w int, m morsel) error) error {
	ch := make(chan morsel, workers)
	done := make(chan struct{})
	var cancel sync.Once
	stop := func() { cancel.Do(func() { close(done) }) }
	var firstErr seqError

	var scanErr error
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		defer close(ch)
		var seq uint64
		err := n.stream(func(c *columnar.Chunk) error {
			select {
			case ch <- morsel{seq: seq, c: c}:
				seq++
				return nil
			case <-done:
				return errMorselCanceled
			}
		})
		if err != nil && err != errMorselCanceled {
			scanErr = err
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for m := range ch {
				if err := handle(w, m); err != nil {
					if !errors.Is(err, errStopPipeline) {
						firstErr.record(m.seq, err)
					}
					stop()
					// Keep draining so the channel empties and peers exit.
					for range ch {
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop()
	scanWG.Wait()
	if err := firstErr.get(); err != nil {
		return err
	}
	return scanErr
}

// sink materializes one pipeline's breaker.
type sink interface {
	// add consumes the stage output of morsel seq on worker w. owned are
	// the pooled chunks backing this morsel: a sink that fully consumes
	// the morsel recycles them into pool before returning.
	add(w int, seq uint64, c *columnar.Chunk, owned []*columnar.Chunk, pool *columnar.Pool) error
	finalize() (*columnar.Chunk, error)
}

// newSink builds the node's sink; the returned pool is non-nil only for
// sinks that consume morsels at the breaker (safe to recycle into).
func newSink(n *pnode) (sink, *columnar.Pool) {
	switch n.sink {
	case sinkAgg:
		return &aggSink{p: n.agg, in: n.aggIn, out: n.outSchema, pending: make(map[uint64]*aggBuilder)}, columnar.NewPool()
	case sinkSort:
		return &sortSink{collectSink: collectSink{schema: n.outSchema, results: make(map[int][]morsel)}, keys: n.keys}, nil
	case sinkLimit:
		return &limitSink{schema: n.outSchema, n: n.limit, pending: make(map[uint64]*columnar.Chunk)}, nil
	default:
		return &collectSink{schema: n.outSchema, results: make(map[int][]morsel)}, nil
	}
}

// collectSink materializes the stream in sequence order.
type collectSink struct {
	schema  *columnar.Schema
	mu      sync.Mutex
	results map[int][]morsel // per worker
}

func (s *collectSink) add(w int, seq uint64, c *columnar.Chunk, owned []*columnar.Chunk, pool *columnar.Pool) error {
	s.mu.Lock()
	s.results[w] = append(s.results[w], morsel{seq: seq, c: c})
	s.mu.Unlock()
	return nil
}

func (s *collectSink) ordered() []morsel {
	var all []morsel
	for _, rs := range s.results {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	return all
}

func (s *collectSink) finalize() (*columnar.Chunk, error) {
	out := columnar.NewChunk(s.schema, 0)
	for _, m := range s.ordered() {
		out.AppendChunk(m.c)
	}
	return out, nil
}

// sortSink collects, then sorts.
type sortSink struct {
	collectSink
	keys []OrderKey
}

func (s *sortSink) finalize() (*columnar.Chunk, error) {
	in, err := s.collectSink.finalize()
	if err != nil {
		return nil, err
	}
	return sortChunk(in, s.keys)
}

// limitSink streams until N rows arrived in contiguous sequence order,
// then stops the pipeline — a scan feeding only a LIMIT reads just enough
// morsels instead of materializing its whole input.
type limitSink struct {
	schema *columnar.Schema
	n      int

	mu      sync.Mutex
	pending map[uint64]*columnar.Chunk
	next    uint64
	got     int // rows in the contiguous prefix
	prefix  []*columnar.Chunk
}

func (s *limitSink) add(w int, seq uint64, c *columnar.Chunk, owned []*columnar.Chunk, pool *columnar.Pool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.got >= s.n {
		return errStopPipeline
	}
	s.pending[seq] = c
	for {
		nc, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		s.prefix = append(s.prefix, nc)
		s.got += nc.NumRows()
		s.next++
	}
	if s.got >= s.n {
		return errStopPipeline
	}
	return nil
}

func (s *limitSink) finalize() (*columnar.Chunk, error) {
	out := columnar.NewChunk(s.schema, 0)
	for _, c := range s.prefix {
		out.AppendChunk(c)
		if out.NumRows() >= s.n {
			break
		}
	}
	if out.NumRows() > s.n {
		return out.Slice(0, s.n), nil
	}
	return out, nil
}

// aggSink is the partition-parallel aggregation breaker: every worker
// folds its morsels into per-morsel hash-table partials, which merge into
// the master table in morsel-sequence order — the same reduction tree at
// any worker count, so float sums combine identically and the output is
// byte-identical to serial execution; first-seen (sequence, row) ordering
// of the merged groups reproduces the serial output order. Merging is
// incremental: a partial folds into the master as soon as the sequence
// prefix before it is complete (immediately at workers = 1, exactly the
// old serial executor's two-table footprint); only out-of-order partials
// are buffered.
type aggSink struct {
	p   *AggregatePlan
	in  *columnar.Schema
	out *columnar.Schema

	mu      sync.Mutex
	master  *aggBuilder
	next    uint64
	pending map[uint64]*aggBuilder
}

func (s *aggSink) add(w int, seq uint64, c *columnar.Chunk, owned []*columnar.Chunk, pool *columnar.Pool) error {
	b, err := newAggBuilder(s.p, s.in)
	if err != nil {
		return err
	}
	if err := b.addChunk(c, seq); err != nil {
		return err
	}
	s.mu.Lock()
	if s.master == nil {
		if s.master, err = newAggBuilder(s.p, s.in); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.pending[seq] = b
	for {
		nb, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		s.master.mergeFrom(nb)
		s.next++
	}
	s.mu.Unlock()
	// The morsel is folded into its hash table: the breaker is the recycle
	// point for every pool chunk this morsel produced.
	for _, oc := range owned {
		pool.PutChunk(oc)
	}
	return nil
}

func (s *aggSink) finalize() (*columnar.Chunk, error) {
	// All sequences arrived, so the merge loop in add drained pending.
	if s.master == nil {
		m, err := newAggBuilder(s.p, s.in)
		if err != nil {
			return nil, err
		}
		s.master = m
	}
	return s.master.finalize(s.out)
}
