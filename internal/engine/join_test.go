package engine

import (
	"math"
	"strings"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/tpch"
)

func joinCatalog(t *testing.T, sf float64) (Catalog, *columnar.Chunk, *columnar.Chunk) {
	t.Helper()
	g := tpch.Gen{SF: sf, Seed: 13}
	li := g.Generate()
	sup := g.Supplier()
	return Catalog{
		"lineitem": NewMemSource(tpch.Schema(), li),
		"supplier": NewMemSource(tpch.SupplierSchema(), sup),
	}, li, sup
}

// revenueByNationPlan joins LINEITEM with SUPPLIER and aggregates revenue
// per nation — the canonical broadcast-join shape.
func revenueByNationPlan() Plan {
	return &OrderByPlan{
		Keys: []OrderKey{{Column: "s_nationkey"}},
		In: &AggregatePlan{
			GroupBy: []string{"s_nationkey"},
			Aggs: []AggSpec{
				{Func: AggSum, Arg: NewBin(OpMul, Col("l_extendedprice"), NewBin(OpSub, ConstFloat(1), Col("l_discount"))), Name: "revenue"},
				{Func: AggCount, Name: "n"},
			},
			In: &JoinPlan{
				Left:     &ScanPlan{Table: "lineitem"},
				Right:    &ScanPlan{Table: "supplier"},
				LeftKey:  "l_suppkey",
				RightKey: "s_suppkey",
			},
		},
	}
}

// scalarRevenueByNation is the reference implementation.
func scalarRevenueByNation(li, sup *columnar.Chunk) (map[int64]float64, map[int64]int64) {
	nation := map[int64]int64{}
	for i := 0; i < sup.NumRows(); i++ {
		nation[sup.Column("s_suppkey").Int64s[i]] = sup.Column("s_nationkey").Int64s[i]
	}
	rev := map[int64]float64{}
	cnt := map[int64]int64{}
	supk := li.Column("l_suppkey").Int64s
	price := li.Column("l_extendedprice").Float64s
	disc := li.Column("l_discount").Float64s
	for i := range supk {
		nk, ok := nation[supk[i]]
		if !ok {
			continue
		}
		rev[nk] += price[i] * (1 - disc[i])
		cnt[nk]++
	}
	return rev, cnt
}

func TestHashJoinMatchesScalar(t *testing.T) {
	cat, li, sup := joinCatalog(t, 0.002)
	out, err := Execute(revenueByNationPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	rev, cnt := scalarRevenueByNation(li, sup)
	if out.NumRows() != len(rev) {
		t.Fatalf("nations = %d, want %d", out.NumRows(), len(rev))
	}
	for i := 0; i < out.NumRows(); i++ {
		nk := out.Column("s_nationkey").Int64s[i]
		if got, want := out.Column("revenue").Float64s[i], rev[nk]; math.Abs(got-want) > 1e-6*want {
			t.Errorf("nation %d revenue = %v, want %v", nk, got, want)
		}
		if got := out.Column("n").Int64s[i]; got != cnt[nk] {
			t.Errorf("nation %d count = %d, want %d", nk, got, cnt[nk])
		}
	}
}

func TestJoinSchemaAndErrors(t *testing.T) {
	cat, _, _ := joinCatalog(t, 0.001)
	j := &JoinPlan{
		Left:     &ScanPlan{Table: "lineitem"},
		Right:    &ScanPlan{Table: "supplier"},
		LeftKey:  "l_suppkey",
		RightKey: "s_suppkey",
	}
	if err := Resolve(j, cat); err != nil {
		t.Fatal(err)
	}
	s, err := j.OutSchema()
	if err != nil {
		t.Fatal(err)
	}
	// Left columns + right columns minus the right key.
	if s.Len() != tpch.Schema().Len()+tpch.SupplierSchema().Len()-1 {
		t.Errorf("joined schema has %d columns", s.Len())
	}
	if s.Index("s_suppkey") >= 0 {
		t.Error("right key duplicated in output")
	}
	if s.Index("s_nationkey") < 0 {
		t.Error("right payload column missing")
	}
	// Bad keys.
	bad := &JoinPlan{Left: j.Left, Right: j.Right, LeftKey: "nope", RightKey: "s_suppkey"}
	if _, err := bad.OutSchema(); err == nil {
		t.Error("bad left key accepted")
	}
	bad = &JoinPlan{Left: j.Left, Right: j.Right, LeftKey: "l_suppkey", RightKey: "nope"}
	if _, err := bad.OutSchema(); err == nil {
		t.Error("bad right key accepted")
	}
}

func TestJoinFilterPushdownThroughJoin(t *testing.T) {
	cat, li, sup := joinCatalog(t, 0.002)
	// A filter below the join on the probe side must reach the scan.
	plan := &AggregatePlan{
		Aggs: []AggSpec{{Func: AggCount, Name: "n"}},
		In: &JoinPlan{
			Left: &FilterPlan{
				Pred: NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
				In:   &ScanPlan{Table: "lineitem"},
			},
			Right:    &ScanPlan{Table: "supplier"},
			LeftKey:  "l_suppkey",
			RightKey: "s_suppkey",
		},
	}
	opt, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	explained := Explain(opt)
	if strings.Contains(explained, "Filter") {
		t.Errorf("probe-side filter not pushed into scan:\n%s", explained)
	}
	out, err := Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Scalar reference.
	nation := map[int64]bool{}
	for i := 0; i < sup.NumRows(); i++ {
		nation[sup.Column("s_suppkey").Int64s[i]] = true
	}
	var want int64
	ship := li.Column("l_shipdate").Int64s
	supk := li.Column("l_suppkey").Int64s
	for i := range ship {
		if ship[i] >= tpch.Q6ShipDateLo && nation[supk[i]] {
			want++
		}
	}
	if got := out.Column("n").Int64s[0]; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

// TestJoinSwappedKeysNormalized: unqualified ON keys written build-side-
// first (`ON s_suppkey = l_suppkey`) are assigned positionally by the
// parser; Resolve repairs the orientation once schemas are known, so the
// query runs instead of failing with "join key not in left input".
func TestJoinSwappedKeysNormalized(t *testing.T) {
	cat, _, _ := joinCatalog(t, 0.002)
	swapped := &JoinPlan{
		Left:    &ScanPlan{Table: "lineitem"},
		Right:   &ScanPlan{Table: "supplier"},
		LeftKey: "s_suppkey", RightKey: "l_suppkey",
	}
	got, err := Execute(swapped, cat)
	if err != nil {
		t.Fatalf("swapped single-key join: %v", err)
	}
	straight := &JoinPlan{
		Left:    &ScanPlan{Table: "lineitem"},
		Right:   &ScanPlan{Table: "supplier"},
		LeftKey: "l_suppkey", RightKey: "s_suppkey",
	}
	want, err := Execute(straight, cat)
	if err != nil {
		t.Fatal(err)
	}
	chunksIdentical(t, got, want)

	// Multi-key form, one pair swapped.
	multi := &JoinPlan{
		Left:     &ScanPlan{Table: "lineitem"},
		Right:    &ScanPlan{Table: "supplier"},
		LeftKeys: []string{"s_suppkey"}, RightKeys: []string{"l_suppkey"},
	}
	got, err = Execute(multi, cat)
	if err != nil {
		t.Fatalf("swapped multi-key join: %v", err)
	}
	chunksIdentical(t, got, want)
}

// TestWhereAboveJoinPushesThroughJoin: a WHERE written after an INNER JOIN
// (the shape sqlfe emits) must split into per-side scan filters with prune
// predicates, not evaluate on every joined row.
func TestWhereAboveJoinPushesThroughJoin(t *testing.T) {
	cat, li, sup := joinCatalog(t, 0.002)
	mkJoin := func() Plan {
		return &JoinPlan{
			Left:     &ScanPlan{Table: "lineitem"},
			Right:    &ScanPlan{Table: "supplier"},
			LeftKey:  "l_suppkey",
			RightKey: "s_suppkey",
		}
	}
	plan := &AggregatePlan{
		Aggs: []AggSpec{{Func: AggCount, Name: "n"}},
		In: &FilterPlan{
			Pred: And(
				NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
				NewBin(OpLT, Col("s_nationkey"), ConstInt(10)),
			),
			In: mkJoin(),
		},
	}
	opt, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	explained := Explain(opt)
	if strings.Contains(explained, "Filter ") {
		t.Errorf("WHERE above join not pushed into scans:\n%s", explained)
	}
	if !strings.Contains(explained, "prune=") {
		t.Errorf("probe-side prune predicates lost:\n%s", explained)
	}
	out, err := Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Unoptimized reference: filter evaluated above the join.
	ref, err := Execute(&AggregatePlan{
		Aggs: []AggSpec{{Func: AggCount, Name: "n"}},
		In: &FilterPlan{
			Pred: And(
				NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
				NewBin(OpLT, Col("s_nationkey"), ConstInt(10)),
			),
			In: mkJoin(),
		},
	}, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Column("n").Int64s[0], ref.Column("n").Int64s[0]; got != want {
		t.Errorf("pushed-down count = %d, reference %d", got, want)
	}
	// Scalar cross-check.
	nation := map[int64]int64{}
	for i := 0; i < sup.NumRows(); i++ {
		nation[sup.Column("s_suppkey").Int64s[i]] = sup.Column("s_nationkey").Int64s[i]
	}
	var want int64
	ship := li.Column("l_shipdate").Int64s
	supk := li.Column("l_suppkey").Int64s
	for i := range ship {
		if nk, ok := nation[supk[i]]; ok && ship[i] >= tpch.Q6ShipDateLo && nk < 10 {
			want++
		}
	}
	if got := out.Column("n").Int64s[0]; got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

// TestProjectionPushdownThroughJoin: both scans of a join under an
// aggregate are restricted to their referenced columns — the probe side to
// its keys and aggregated inputs, the build side to its keys and the
// columns the aggregate names (shuffle joins scan large build sides, so
// "keep the build side whole" would ship dead columns through the
// exchange). Only a bare join result keeps its sides whole.
func TestProjectionPushdownThroughJoin(t *testing.T) {
	cat, _, _ := joinCatalog(t, 0.002)
	opt, err := Optimize(revenueByNationPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	var scans []*ScanPlan
	var collect func(Plan)
	collect = func(p Plan) {
		for n := p; n != nil; n = n.Child() {
			if j, ok := n.(*JoinPlan); ok {
				collect(j.Right)
			}
			if s, ok := n.(*ScanPlan); ok {
				scans = append(scans, s)
			}
		}
	}
	collect(opt)
	var probe, build *ScanPlan
	for _, s := range scans {
		switch s.Table {
		case "lineitem":
			probe = s
		case "supplier":
			build = s
		}
	}
	if probe == nil || build == nil {
		t.Fatalf("scans = %v", scans)
	}
	if probe.Projection == nil {
		t.Fatalf("probe-side projection not pushed down:\n%s", Explain(opt))
	}
	want := map[string]bool{"l_suppkey": true, "l_extendedprice": true, "l_discount": true}
	if len(probe.Projection) != len(want) {
		t.Errorf("probe projection = %v, want columns %v", probe.Projection, want)
	}
	for _, c := range probe.Projection {
		if !want[c] {
			t.Errorf("probe projection includes unneeded column %q", c)
		}
	}
	wantBuild := map[string]bool{"s_suppkey": true, "s_nationkey": true}
	if build.Projection == nil {
		t.Errorf("build-side projection not pushed down:\n%s", Explain(opt))
	}
	if len(build.Projection) != len(wantBuild) {
		t.Errorf("build projection = %v, want columns %v", build.Projection, wantBuild)
	}
	for _, c := range build.Projection {
		if !wantBuild[c] {
			t.Errorf("build projection includes unneeded column %q", c)
		}
	}
	// And the projected plan still computes the right answer.
	out, err := Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Execute(revenueByNationPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	chunksIdentical(t, out, ref)
}

func TestJoinPlanJSONRoundTrip(t *testing.T) {
	cat, _, _ := joinCatalog(t, 0.001)
	plan, err := Optimize(revenueByNationPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := MarshalPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(back, cat)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows %d vs %d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Column("revenue").Float64s[i] != b.Column("revenue").Float64s[i] {
			t.Fatal("results diverge after JSON round trip")
		}
	}
}

func TestJoinDistributedSplit(t *testing.T) {
	// Agg over join splits: the join stays in the worker scope.
	cat, li, sup := joinCatalog(t, 0.002)
	plan, err := Optimize(revenueByNationPlan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := SplitDistributed(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(dist.Worker), "HashJoin") {
		t.Fatalf("worker scope lost the join:\n%s", Explain(dist.Worker))
	}
	// Partition lineitem over 5 workers; supplier is broadcast (full copy
	// in each worker catalog).
	var results []*columnar.Chunk
	for _, part := range tpch.SplitFiles(li, 5) {
		wcat := Catalog{
			"lineitem": NewMemSource(tpch.Schema(), part),
			"supplier": NewMemSource(tpch.SupplierSchema(), sup),
		}
		r, err := Execute(dist.Worker, wcat)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	ws, _ := dist.Worker.OutSchema()
	merged, err := Execute(dist.Driver, Catalog{WorkerResultTable: NewMemSource(ws, results...)})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != single.NumRows() {
		t.Fatalf("distributed %d rows vs single %d", merged.NumRows(), single.NumRows())
	}
	for i := 0; i < single.NumRows(); i++ {
		a := single.Column("revenue").Float64s[i]
		b := merged.Column("revenue").Float64s[i]
		if math.Abs(a-b) > 1e-6*math.Abs(a) {
			t.Errorf("row %d: %v vs %v", i, a, b)
		}
	}
}
