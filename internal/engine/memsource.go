package engine

import (
	"fmt"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// MemSource serves in-memory chunks as a scan source. It honors projection
// (column subsetting) but, having no row-group statistics, ignores prune
// predicates. Used for driver-side tables and tests.
type MemSource struct {
	TableSchema *columnar.Schema
	Chunks      []*columnar.Chunk
}

// NewMemSource wraps chunks sharing one schema.
func NewMemSource(schema *columnar.Schema, chunks ...*columnar.Chunk) *MemSource {
	return &MemSource{TableSchema: schema, Chunks: chunks}
}

// Schema returns the table schema.
func (m *MemSource) Schema() (*columnar.Schema, error) { return m.TableSchema, nil }

// Scan yields each chunk, projected.
func (m *MemSource) Scan(proj []string, _ []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	for _, c := range m.Chunks {
		out := c
		if proj != nil {
			p, err := c.Project(proj...)
			if err != nil {
				return err
			}
			out = p
		}
		if err := yield(out); err != nil {
			return err
		}
	}
	return nil
}

// LpqSource scans an lpq file through any io.ReaderAt, honoring projection
// and min/max row-group pruning. It is the local (non-S3) scan path.
type LpqSource struct {
	Reader *lpq.Reader
}

// Schema returns the file schema.
func (s *LpqSource) Schema() (*columnar.Schema, error) { return s.Reader.Schema(), nil }

// Scan yields one chunk per non-pruned row group.
func (s *LpqSource) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	meta := s.Reader.Meta()
	var cols []int
	if proj != nil {
		for _, name := range proj {
			i := meta.Schema.Index(name)
			if i < 0 {
				return fmt.Errorf("engine: column %q not in file", name)
			}
			cols = append(cols, i)
		}
	}
	for _, g := range lpq.PruneRowGroups(meta, preds) {
		c, err := s.Reader.ReadRowGroup(g, cols)
		if err != nil {
			return err
		}
		if err := yield(c); err != nil {
			return err
		}
	}
	return nil
}
