package engine

import (
	"fmt"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// MemSource serves in-memory chunks as a scan source. It honors projection
// (column subsetting) but, having no row-group statistics, ignores prune
// predicates. Used for driver-side tables and tests.
type MemSource struct {
	TableSchema *columnar.Schema
	Chunks      []*columnar.Chunk
}

// NewMemSource wraps chunks sharing one schema.
func NewMemSource(schema *columnar.Schema, chunks ...*columnar.Chunk) *MemSource {
	return &MemSource{TableSchema: schema, Chunks: chunks}
}

// Schema returns the table schema.
func (m *MemSource) Schema() (*columnar.Schema, error) { return m.TableSchema, nil }

// Scan yields each chunk, projected.
func (m *MemSource) Scan(proj []string, _ []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	for _, c := range m.Chunks {
		out := c
		if proj != nil {
			p, err := c.Project(proj...)
			if err != nil {
				return err
			}
			out = p
		}
		if err := yield(out); err != nil {
			return err
		}
	}
	return nil
}

// LpqSource scans an lpq file through any io.ReaderAt, honoring projection
// and min/max row-group pruning. It is the local (non-S3) scan path.
type LpqSource struct {
	Reader *lpq.Reader
}

// Schema returns the file schema.
func (s *LpqSource) Schema() (*columnar.Schema, error) { return s.Reader.Schema(), nil }

// Scan yields one chunk per non-pruned row group.
func (s *LpqSource) Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	meta := s.Reader.Meta()
	cols, err := s.resolve(proj)
	if err != nil {
		return err
	}
	for _, g := range lpq.PruneRowGroups(meta, preds) {
		c, err := s.Reader.ReadRowGroup(g, cols)
		if err != nil {
			return err
		}
		if err := yield(c); err != nil {
			return err
		}
	}
	return nil
}

// ScanFiltered is the late-materialized local scan: per surviving row
// group it reads only the filter's columns, evaluates the filter, and reads
// the remaining projected columns only when some rows pass, gathering both
// by the same selection. Row groups with an empty selection cost only the
// filter-column reads.
func (s *LpqSource) ScanFiltered(proj []string, preds []lpq.Predicate, filter Expr, yield func(*columnar.Chunk) error) error {
	meta := s.Reader.Meta()
	cols, err := s.resolve(proj)
	if err != nil {
		return err
	}
	if cols == nil {
		cols = make([]int, meta.Schema.Len())
		for i := range cols {
			cols[i] = i
		}
	}
	need := map[string]bool{}
	for _, c := range filter.Columns(nil) {
		need[c] = true
	}
	var fcols, pcols []int
	for _, c := range cols {
		if need[meta.Schema.Fields[c].Name] {
			fcols = append(fcols, c)
		} else {
			pcols = append(pcols, c)
		}
	}
	var sel []int
	for _, g := range lpq.PruneRowGroups(meta, preds) {
		fc, err := s.Reader.ReadRowGroup(g, fcols)
		if err != nil {
			return err
		}
		sel, err = FilterSelection(fc, filter, sel)
		if err != nil {
			return err
		}
		if len(sel) == 0 {
			continue
		}
		pc, err := s.Reader.ReadRowGroup(g, pcols)
		if err != nil {
			return err
		}
		out := columnar.NewChunk(mustProject(meta.Schema, cols), len(sel))
		fi, pi := 0, 0
		for oi, c := range cols {
			var src *columnar.Vector
			if need[meta.Schema.Fields[c].Name] {
				src = fc.Columns[fi]
				fi++
			} else {
				src = pc.Columns[pi]
				pi++
			}
			out.Columns[oi].AppendGather(src, sel)
		}
		if err := yield(out); err != nil {
			return err
		}
	}
	return nil
}

// resolve maps projection names to column indices (nil proj stays nil).
func (s *LpqSource) resolve(proj []string) ([]int, error) {
	if proj == nil {
		return nil, nil
	}
	meta := s.Reader.Meta()
	cols := make([]int, 0, len(proj))
	for _, name := range proj {
		i := meta.Schema.Index(name)
		if i < 0 {
			return nil, fmt.Errorf("engine: column %q not in file", name)
		}
		cols = append(cols, i)
	}
	return cols, nil
}

// mustProject builds the schema of the given column indices.
func mustProject(schema *columnar.Schema, cols []int) *columnar.Schema {
	fields := make([]columnar.Field, len(cols))
	for i, c := range cols {
		fields[i] = schema.Fields[c]
	}
	return columnar.NewSchema(fields...)
}

var _ FilterableSource = (*LpqSource)(nil)
