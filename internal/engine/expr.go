// Package engine implements Lambada's query processing framework (§3.2):
// a plan intermediate representation shared by all frontends, a common set
// of optimizations (selection and projection push-down, data-parallel plan
// splitting into driver and worker scopes), and vectorized execution over
// columnar chunks.
//
// Where the paper lowers pipelines to LLVM IR and JIT-compiles them, this
// implementation fuses operators into pipelines of Go closures over column
// vectors — the same architectural property (no per-tuple interpretation,
// materialization only at pipeline breakers) expressed in idiomatic Go.
package engine

import (
	"fmt"
	"strings"

	"lambada/internal/columnar"
)

// Expr is a vectorized expression over a chunk.
type Expr interface {
	// Type returns the result type under the given input schema.
	Type(schema *columnar.Schema) (columnar.Type, error)
	// Eval evaluates the expression over all rows of the chunk.
	Eval(c *columnar.Chunk) (*columnar.Vector, error)
	// Columns appends the referenced column names to dst.
	Columns(dst []string) []string
	// String renders the expression SQL-ishly.
	String() string
}

// Col references an input column by name.
type Col string

// Type returns the column's declared type.
func (e Col) Type(s *columnar.Schema) (columnar.Type, error) {
	i := s.Index(string(e))
	if i < 0 {
		return 0, fmt.Errorf("engine: unknown column %q", string(e))
	}
	return s.Fields[i].Type, nil
}

// Eval returns the column vector (shared, not copied).
func (e Col) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	v := c.Column(string(e))
	if v == nil {
		return nil, fmt.Errorf("engine: unknown column %q", string(e))
	}
	return v, nil
}

// Columns appends the column name.
func (e Col) Columns(dst []string) []string { return append(dst, string(e)) }

// String returns the column name.
func (e Col) String() string { return string(e) }

// ConstInt is an int64 literal.
type ConstInt int64

// Type returns Int64.
func (e ConstInt) Type(*columnar.Schema) (columnar.Type, error) { return columnar.Int64, nil }

// Eval broadcasts the literal.
func (e ConstInt) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	n := c.NumRows()
	v := columnar.NewVector(columnar.Int64, n)
	for i := 0; i < n; i++ {
		v.Int64s = append(v.Int64s, int64(e))
	}
	return v, nil
}

// Columns is a no-op.
func (e ConstInt) Columns(dst []string) []string { return dst }

// String renders the literal.
func (e ConstInt) String() string { return fmt.Sprintf("%d", int64(e)) }

// ConstFloat is a float64 literal.
type ConstFloat float64

// Type returns Float64.
func (e ConstFloat) Type(*columnar.Schema) (columnar.Type, error) { return columnar.Float64, nil }

// Eval broadcasts the literal.
func (e ConstFloat) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	n := c.NumRows()
	v := columnar.NewVector(columnar.Float64, n)
	for i := 0; i < n; i++ {
		v.Float64s = append(v.Float64s, float64(e))
	}
	return v, nil
}

// Columns is a no-op.
func (e ConstFloat) Columns(dst []string) []string { return dst }

// String renders the literal.
func (e ConstFloat) String() string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", float64(e)), "0"), ".")
}

// BinOp is a binary operator kind.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpEQ: "=", OpNE: "<>", OpAnd: "AND", OpOr: "OR",
}

// IsComparison reports whether the operator yields Bool from numerics.
func (op BinOp) IsComparison() bool { return op >= OpLT && op <= OpNE }

// IsLogical reports whether the operator combines Bools.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// NewBin builds a binary expression.
func NewBin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Type computes the result type with numeric promotion.
func (e *Bin) Type(s *columnar.Schema) (columnar.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return 0, err
	}
	switch {
	case e.Op.IsLogical():
		if lt != columnar.Bool || rt != columnar.Bool {
			return 0, fmt.Errorf("engine: %s requires booleans, got %v and %v", binOpNames[e.Op], lt, rt)
		}
		return columnar.Bool, nil
	case e.Op.IsComparison():
		if lt == columnar.Bool || rt == columnar.Bool {
			if lt != rt {
				return 0, fmt.Errorf("engine: cannot compare %v with %v", lt, rt)
			}
		}
		return columnar.Bool, nil
	default:
		if lt == columnar.Bool || rt == columnar.Bool {
			return 0, fmt.Errorf("engine: arithmetic on boolean")
		}
		if lt == columnar.Float64 || rt == columnar.Float64 || e.Op == OpDiv {
			return columnar.Float64, nil
		}
		return columnar.Int64, nil
	}
}

// Eval evaluates both sides and applies the operator element-wise.
func (e *Bin) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	lv, err := e.L.Eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(c)
	if err != nil {
		return nil, err
	}
	n := lv.Len()
	if rv.Len() != n {
		return nil, fmt.Errorf("engine: length mismatch %d vs %d", n, rv.Len())
	}
	rt, err := e.Type(c.Schema)
	if err != nil {
		return nil, err
	}
	out := columnar.NewVector(rt, n)
	switch {
	case e.Op.IsLogical():
		for i := 0; i < n; i++ {
			if e.Op == OpAnd {
				out.Bools = append(out.Bools, lv.Bools[i] && rv.Bools[i])
			} else {
				out.Bools = append(out.Bools, lv.Bools[i] || rv.Bools[i])
			}
		}
	case e.Op.IsComparison():
		if lv.Type == columnar.Int64 && rv.Type == columnar.Int64 {
			for i := 0; i < n; i++ {
				out.Bools = append(out.Bools, cmpInt(e.Op, lv.Int64s[i], rv.Int64s[i]))
			}
		} else if lv.Type == columnar.Bool {
			for i := 0; i < n; i++ {
				li, ri := lv.Int64At(i), rv.Int64At(i)
				out.Bools = append(out.Bools, cmpInt(e.Op, li, ri))
			}
		} else {
			for i := 0; i < n; i++ {
				out.Bools = append(out.Bools, cmpFloat(e.Op, lv.Float64At(i), rv.Float64At(i)))
			}
		}
	default:
		if rt == columnar.Int64 {
			for i := 0; i < n; i++ {
				out.Int64s = append(out.Int64s, arithInt(e.Op, lv.Int64s[i], rv.Int64s[i]))
			}
		} else {
			for i := 0; i < n; i++ {
				out.Float64s = append(out.Float64s, arithFloat(e.Op, lv.Float64At(i), rv.Float64At(i)))
			}
		}
	}
	return out, nil
}

func cmpInt(op BinOp, a, b int64) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

func cmpFloat(op BinOp, a, b float64) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

func arithInt(op BinOp, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

func arithFloat(op BinOp, a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	default:
		return a / b
	}
}

// Columns appends both sides' references.
func (e *Bin) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }

// String renders infix.
func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), binOpNames[e.Op], e.R.String())
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Type returns Bool (the operand must be Bool).
func (e *Not) Type(s *columnar.Schema) (columnar.Type, error) {
	t, err := e.E.Type(s)
	if err != nil {
		return 0, err
	}
	if t != columnar.Bool {
		return 0, fmt.Errorf("engine: NOT on %v", t)
	}
	return columnar.Bool, nil
}

// Eval negates element-wise.
func (e *Not) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	v, err := e.E.Eval(c)
	if err != nil {
		return nil, err
	}
	out := columnar.NewVector(columnar.Bool, v.Len())
	for _, b := range v.Bools {
		out.Bools = append(out.Bools, !b)
	}
	return out, nil
}

// Columns appends the operand's references.
func (e *Not) Columns(dst []string) []string { return e.E.Columns(dst) }

// String renders prefix NOT.
func (e *Not) String() string { return "NOT " + e.E.String() }

// Between builds lo <= col AND col <= hi.
func Between(e Expr, lo, hi Expr) Expr {
	return NewBin(OpAnd, NewBin(OpGE, e, lo), NewBin(OpLE, e, hi))
}

// And folds conjuncts into a single expression (nil for empty input).
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBin(OpAnd, out, e)
		}
	}
	return out
}

// SplitConjuncts flattens nested ANDs into a list.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}
