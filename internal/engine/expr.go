// Package engine implements Lambada's query processing framework (§3.2):
// a plan intermediate representation shared by all frontends, a common set
// of optimizations (selection and projection push-down, data-parallel plan
// splitting into driver and worker scopes), and vectorized execution over
// columnar chunks.
//
// Where the paper lowers pipelines to LLVM IR and JIT-compiles them, this
// implementation fuses operators into pipelines of Go closures over column
// vectors — the same architectural property (no per-tuple interpretation,
// materialization only at pipeline breakers) expressed in idiomatic Go.
//
// Two executors share those pipelines. Execute runs them serially.
// ExecuteParallel adds the intra-worker fifth concurrency level (on top of
// the scan operator's four): scan chunks become morsels fanned out to N
// pipeline goroutines, and aggregation is partition-parallel — per-chunk
// hash tables merged in sequence order at the pipeline breaker, which also
// recycles chunks through columnar.Pool (see the ownership contract there:
// the breaker is the only recycle point, after its morsel is fully
// consumed). Results are byte-identical between the two executors; see
// parallel.go for why that holds even for float sums.
package engine

import (
	"fmt"
	"strings"

	"lambada/internal/columnar"
)

// Expr is a vectorized expression over a chunk.
type Expr interface {
	// Type returns the result type under the given input schema.
	Type(schema *columnar.Schema) (columnar.Type, error)
	// Eval evaluates the expression over all rows of the chunk.
	Eval(c *columnar.Chunk) (*columnar.Vector, error)
	// Columns appends the referenced column names to dst.
	Columns(dst []string) []string
	// String renders the expression SQL-ishly.
	String() string
}

// Col references an input column by name.
type Col string

// Type returns the column's declared type.
func (e Col) Type(s *columnar.Schema) (columnar.Type, error) {
	i := s.Index(string(e))
	if i < 0 {
		return 0, fmt.Errorf("engine: unknown column %q", string(e))
	}
	return s.Fields[i].Type, nil
}

// Eval returns the column vector (shared, not copied).
func (e Col) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	v := c.Column(string(e))
	if v == nil {
		return nil, fmt.Errorf("engine: unknown column %q", string(e))
	}
	return v, nil
}

// Columns appends the column name.
func (e Col) Columns(dst []string) []string { return append(dst, string(e)) }

// String returns the column name.
func (e Col) String() string { return string(e) }

// ConstInt is an int64 literal.
type ConstInt int64

// Type returns Int64.
func (e ConstInt) Type(*columnar.Schema) (columnar.Type, error) { return columnar.Int64, nil }

// Eval broadcasts the literal.
func (e ConstInt) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	n := c.NumRows()
	v := columnar.NewVector(columnar.Int64, n)
	v.Int64s = v.Int64s[:n]
	for i := range v.Int64s {
		v.Int64s[i] = int64(e)
	}
	return v, nil
}

// Columns is a no-op.
func (e ConstInt) Columns(dst []string) []string { return dst }

// String renders the literal.
func (e ConstInt) String() string { return fmt.Sprintf("%d", int64(e)) }

// ConstFloat is a float64 literal.
type ConstFloat float64

// Type returns Float64.
func (e ConstFloat) Type(*columnar.Schema) (columnar.Type, error) { return columnar.Float64, nil }

// Eval broadcasts the literal.
func (e ConstFloat) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	n := c.NumRows()
	v := columnar.NewVector(columnar.Float64, n)
	v.Float64s = v.Float64s[:n]
	for i := range v.Float64s {
		v.Float64s[i] = float64(e)
	}
	return v, nil
}

// Columns is a no-op.
func (e ConstFloat) Columns(dst []string) []string { return dst }

// String renders the literal.
func (e ConstFloat) String() string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", float64(e)), "0"), ".")
}

// BinOp is a binary operator kind.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
	OpEQ: "=", OpNE: "<>", OpAnd: "AND", OpOr: "OR",
}

// IsComparison reports whether the operator yields Bool from numerics.
func (op BinOp) IsComparison() bool { return op >= OpLT && op <= OpNE }

// IsLogical reports whether the operator combines Bools.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// NewBin builds a binary expression.
func NewBin(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Type computes the result type with numeric promotion.
func (e *Bin) Type(s *columnar.Schema) (columnar.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return 0, err
	}
	switch {
	case e.Op.IsLogical():
		if lt != columnar.Bool || rt != columnar.Bool {
			return 0, fmt.Errorf("engine: %s requires booleans, got %v and %v", binOpNames[e.Op], lt, rt)
		}
		return columnar.Bool, nil
	case e.Op.IsComparison():
		if lt == columnar.Bool || rt == columnar.Bool {
			if lt != rt {
				return 0, fmt.Errorf("engine: cannot compare %v with %v", lt, rt)
			}
		}
		return columnar.Bool, nil
	default:
		if lt == columnar.Bool || rt == columnar.Bool {
			return 0, fmt.Errorf("engine: arithmetic on boolean")
		}
		if lt == columnar.Float64 || rt == columnar.Float64 || e.Op == OpDiv {
			return columnar.Float64, nil
		}
		return columnar.Int64, nil
	}
}

// constSide extracts a literal operand, if any.
func constSide(e Expr) (f float64, i int64, isInt, ok bool) {
	switch v := e.(type) {
	case ConstInt:
		return float64(v), int64(v), true, true
	case ConstFloat:
		return float64(v), int64(v), false, true
	}
	return 0, 0, false, false
}

// Eval evaluates both sides and applies the operator element-wise. When one
// side is a literal, the scalar is folded into the loop instead of being
// broadcast into a throwaway vector — comparisons against constants and
// expressions like (1 - x) are the engine's hottest filter/projection work.
func (e *Bin) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	if !e.Op.IsLogical() {
		lf, li, lIsInt, lConst := constSide(e.L)
		rf, ri, rIsInt, rConst := constSide(e.R)
		if lConst != rConst { // exactly one literal side
			var vec *columnar.Vector
			var err error
			if lConst {
				vec, err = e.R.Eval(c)
			} else {
				vec, err = e.L.Eval(c)
			}
			if err != nil {
				return nil, err
			}
			cf, ci, cIsInt := lf, li, lIsInt
			if rConst {
				cf, ci, cIsInt = rf, ri, rIsInt
			}
			return e.evalScalar(c, vec, lConst, cf, ci, cIsInt)
		}
	}
	lv, err := e.L.Eval(c)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(c)
	if err != nil {
		return nil, err
	}
	n := lv.Len()
	if rv.Len() != n {
		return nil, fmt.Errorf("engine: length mismatch %d vs %d", n, rv.Len())
	}
	rt, err := e.Type(c.Schema)
	if err != nil {
		return nil, err
	}
	// Each arm bulk-writes the preallocated output by index: no per-value
	// append bookkeeping in these hot loops.
	out := columnar.NewVector(rt, n)
	switch {
	case e.Op.IsLogical():
		out.Bools = out.Bools[:n]
		if e.Op == OpAnd {
			for i := range out.Bools {
				out.Bools[i] = lv.Bools[i] && rv.Bools[i]
			}
		} else {
			for i := range out.Bools {
				out.Bools[i] = lv.Bools[i] || rv.Bools[i]
			}
		}
	case e.Op.IsComparison():
		out.Bools = out.Bools[:n]
		if lv.Type == columnar.Int64 && rv.Type == columnar.Int64 {
			for i := range out.Bools {
				out.Bools[i] = cmpInt(e.Op, lv.Int64s[i], rv.Int64s[i])
			}
		} else if lv.Type == columnar.Bool {
			for i := range out.Bools {
				out.Bools[i] = cmpInt(e.Op, lv.Int64At(i), rv.Int64At(i))
			}
		} else {
			for i := range out.Bools {
				out.Bools[i] = cmpFloat(e.Op, lv.Float64At(i), rv.Float64At(i))
			}
		}
	default:
		if rt == columnar.Int64 {
			out.Int64s = out.Int64s[:n]
			for i := range out.Int64s {
				out.Int64s[i] = arithInt(e.Op, lv.Int64s[i], rv.Int64s[i])
			}
		} else {
			out.Float64s = out.Float64s[:n]
			if lv.Type == columnar.Float64 && rv.Type == columnar.Float64 {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, lv.Float64s[i], rv.Float64s[i])
				}
			} else {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, lv.Float64At(i), rv.Float64At(i))
				}
			}
		}
	}
	return out, nil
}

// evalScalar applies the operator between a vector and a literal scalar
// (scalarOnLeft tells which operand the literal was), writing the output by
// index with no broadcast vector for the literal.
func (e *Bin) evalScalar(c *columnar.Chunk, vec *columnar.Vector, scalarOnLeft bool, cf float64, ci int64, cIsInt bool) (*columnar.Vector, error) {
	rt, err := e.Type(c.Schema) // also validates operand types
	if err != nil {
		return nil, err
	}
	n := vec.Len()
	out := columnar.NewVector(rt, n)
	switch {
	case e.Op.IsComparison():
		out.Bools = out.Bools[:n]
		switch {
		case vec.Type == columnar.Int64 && cIsInt:
			if scalarOnLeft {
				for i := range out.Bools {
					out.Bools[i] = cmpInt(e.Op, ci, vec.Int64s[i])
				}
			} else {
				for i := range out.Bools {
					out.Bools[i] = cmpInt(e.Op, vec.Int64s[i], ci)
				}
			}
		case vec.Type == columnar.Float64:
			if scalarOnLeft {
				for i := range out.Bools {
					out.Bools[i] = cmpFloat(e.Op, cf, vec.Float64s[i])
				}
			} else {
				for i := range out.Bools {
					out.Bools[i] = cmpFloat(e.Op, vec.Float64s[i], cf)
				}
			}
		default:
			if scalarOnLeft {
				for i := range out.Bools {
					out.Bools[i] = cmpFloat(e.Op, cf, vec.Float64At(i))
				}
			} else {
				for i := range out.Bools {
					out.Bools[i] = cmpFloat(e.Op, vec.Float64At(i), cf)
				}
			}
		}
	case rt == columnar.Int64:
		out.Int64s = out.Int64s[:n]
		if scalarOnLeft {
			for i := range out.Int64s {
				out.Int64s[i] = arithInt(e.Op, ci, vec.Int64s[i])
			}
		} else {
			for i := range out.Int64s {
				out.Int64s[i] = arithInt(e.Op, vec.Int64s[i], ci)
			}
		}
	default:
		out.Float64s = out.Float64s[:n]
		if vec.Type == columnar.Float64 {
			if scalarOnLeft {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, cf, vec.Float64s[i])
				}
			} else {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, vec.Float64s[i], cf)
				}
			}
		} else {
			if scalarOnLeft {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, cf, vec.Float64At(i))
				}
			} else {
				for i := range out.Float64s {
					out.Float64s[i] = arithFloat(e.Op, vec.Float64At(i), cf)
				}
			}
		}
	}
	return out, nil
}

func cmpInt(op BinOp, a, b int64) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

func cmpFloat(op BinOp, a, b float64) bool {
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

func arithInt(op BinOp, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	default:
		if b == 0 {
			return 0
		}
		return a / b
	}
}

func arithFloat(op BinOp, a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	default:
		return a / b
	}
}

// Columns appends both sides' references.
func (e *Bin) Columns(dst []string) []string { return e.R.Columns(e.L.Columns(dst)) }

// String renders infix.
func (e *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), binOpNames[e.Op], e.R.String())
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Type returns Bool (the operand must be Bool).
func (e *Not) Type(s *columnar.Schema) (columnar.Type, error) {
	t, err := e.E.Type(s)
	if err != nil {
		return 0, err
	}
	if t != columnar.Bool {
		return 0, fmt.Errorf("engine: NOT on %v", t)
	}
	return columnar.Bool, nil
}

// Eval negates element-wise.
func (e *Not) Eval(c *columnar.Chunk) (*columnar.Vector, error) {
	v, err := e.E.Eval(c)
	if err != nil {
		return nil, err
	}
	out := columnar.NewVector(columnar.Bool, v.Len())
	out.Bools = out.Bools[:v.Len()]
	for i, b := range v.Bools {
		out.Bools[i] = !b
	}
	return out, nil
}

// Columns appends the operand's references.
func (e *Not) Columns(dst []string) []string { return e.E.Columns(dst) }

// String renders prefix NOT.
func (e *Not) String() string { return "NOT " + e.E.String() }

// Between builds lo <= col AND col <= hi.
func Between(e Expr, lo, hi Expr) Expr {
	return NewBin(OpAnd, NewBin(OpGE, e, lo), NewBin(OpLE, e, hi))
}

// And folds conjuncts into a single expression (nil for empty input).
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBin(OpAnd, out, e)
		}
	}
	return out
}

// SplitConjuncts flattens nested ANDs into a list.
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}
