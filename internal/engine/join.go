package engine

import (
	"fmt"

	"lambada/internal/columnar"
)

// JoinPlan is an inner hash join: the Right (small) side is materialized
// into a hash table, the Left side streams through it. In distributed
// plans the right side is a driver-broadcast table (§3.2: small scopes run
// on the driver to read "small amounts of data locally that should be
// broadcasted into the serverless workers").
type JoinPlan struct {
	Left, Right       Plan
	LeftKey, RightKey string
}

// OutSchema is the left schema followed by the right schema minus the
// right join key (which duplicates the left one). Other duplicate column
// names are rejected.
func (p *JoinPlan) OutSchema() (*columnar.Schema, error) {
	ls, err := p.Left.OutSchema()
	if err != nil {
		return nil, err
	}
	rs, err := p.Right.OutSchema()
	if err != nil {
		return nil, err
	}
	if ls.Index(p.LeftKey) < 0 {
		return nil, fmt.Errorf("engine: join key %q not in left input", p.LeftKey)
	}
	ri := rs.Index(p.RightKey)
	if ri < 0 {
		return nil, fmt.Errorf("engine: join key %q not in right input", p.RightKey)
	}
	if t := rs.Fields[ri].Type; t == columnar.Float64 {
		return nil, fmt.Errorf("engine: float join key %q not supported", p.RightKey)
	}
	out := &columnar.Schema{}
	out.Fields = append(out.Fields, ls.Fields...)
	for i, f := range rs.Fields {
		if i == ri {
			continue
		}
		if ls.Index(f.Name) >= 0 {
			return nil, fmt.Errorf("engine: duplicate column %q across join sides", f.Name)
		}
		out.Fields = append(out.Fields, f)
	}
	return out, nil
}

// Child returns the probe (left) side — the primary pipeline.
func (p *JoinPlan) Child() Plan { return p.Left }

// String describes the join.
func (p *JoinPlan) String() string {
	return fmt.Sprintf("HashJoin %s = %s", p.LeftKey, p.RightKey)
}

// runJoin builds the hash table from the right side and streams the left.
func runJoin(p *JoinPlan, cat Catalog, yield func(*columnar.Chunk) error) error {
	right, err := Execute(p.Right, cat)
	if err != nil {
		return err
	}
	rs := right.Schema
	ri := rs.Index(p.RightKey)
	build := make(map[int64][]int, right.NumRows())
	for i := 0; i < right.NumRows(); i++ {
		k := right.Columns[ri].Int64At(i)
		build[k] = append(build[k], i)
	}

	outSchema, err := p.OutSchema()
	if err != nil {
		return err
	}
	ls, err := p.Left.OutSchema()
	if err != nil {
		return err
	}
	li := ls.Index(p.LeftKey)
	nLeft := ls.Len()

	return executePush(p.Left, cat, func(c *columnar.Chunk) error {
		out := columnar.NewChunk(outSchema, c.NumRows())
		keys := c.Columns[li]
		for row := 0; row < c.NumRows(); row++ {
			matches := build[keys.Int64At(row)]
			for _, m := range matches {
				for j := 0; j < nLeft; j++ {
					out.Columns[j].Append(c.Columns[j], row)
				}
				col := nLeft
				for j := 0; j < rs.Len(); j++ {
					if j == ri {
						continue
					}
					out.Columns[col].Append(right.Columns[j], m)
					col++
				}
			}
		}
		if out.NumRows() == 0 {
			return nil
		}
		return yield(out)
	})
}
