package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"lambada/internal/columnar"
)

// ErrJoinKey tags OutSchema errors for join key types the hash-join table
// does not cover (anything but BIGINT). Callers detect it with errors.Is.
var ErrJoinKey = errors.New("unsupported join key")

// JoinPlan is an inner hash join: the Right (small) side is materialized
// into a hash table, the Left side streams through it. In distributed
// plans the right side is a driver-broadcast table (§3.2: small scopes run
// on the driver to read "small amounts of data locally that should be
// broadcasted into the serverless workers").
//
// Keys are given either as the single-key pair LeftKey/RightKey or as the
// equal-length lists LeftKeys/RightKeys (which take precedence when set).
// All key columns must be Int64: single keys use the table's dense or
// open-addressing int64 modes, multi-key joins the encoded-string mode.
type JoinPlan struct {
	Left, Right       Plan
	LeftKey, RightKey string
	// LeftKeys/RightKeys is the multi-column form: row i of the left keys
	// joins against row i of the right keys.
	LeftKeys, RightKeys []string
}

// keyNames returns the normalized key column lists.
func (p *JoinPlan) keyNames() (left, right []string) {
	if len(p.LeftKeys) > 0 || len(p.RightKeys) > 0 {
		return p.LeftKeys, p.RightKeys
	}
	return []string{p.LeftKey}, []string{p.RightKey}
}

// normalizeKeys flips key pairs written in the wrong orientation: when a
// pair's left key only resolves against the right schema and its right
// key against the left one (e.g. SQL's unqualified `ON s_suppkey =
// l_suppkey`, which the parser assigns positionally), the pair is
// swapped. Called by Resolve once both sides' schemas are known; pairs
// that resolve as written, or not at all, are left for OutSchema to
// validate.
func (p *JoinPlan) normalizeKeys() {
	ls, err := p.Left.OutSchema()
	if err != nil {
		return
	}
	rs, err := p.Right.OutSchema()
	if err != nil {
		return
	}
	lk, rk := p.keyNames()
	if len(lk) != len(rk) {
		return
	}
	for i := range lk {
		if ls.Index(lk[i]) < 0 && rs.Index(lk[i]) >= 0 &&
			ls.Index(rk[i]) >= 0 && rs.Index(rk[i]) < 0 {
			if len(p.LeftKeys) > 0 || len(p.RightKeys) > 0 {
				p.LeftKeys[i], p.RightKeys[i] = p.RightKeys[i], p.LeftKeys[i]
			} else {
				p.LeftKey, p.RightKey = p.RightKey, p.LeftKey
			}
		}
	}
}

// OutSchema is the left schema followed by the right schema minus the
// right join keys (which duplicate the left ones). Other duplicate column
// names are rejected, as are key types the join table does not cover
// (ErrJoinKey): keys must be Int64 on both sides — bool and float keys
// fail here, at planning time, instead of panicking at build time.
func (p *JoinPlan) OutSchema() (*columnar.Schema, error) {
	lk, rk := p.keyNames()
	if len(lk) == 0 || len(lk) != len(rk) {
		return nil, fmt.Errorf("engine: join needs matching key lists, got %d left / %d right", len(lk), len(rk))
	}
	ls, err := p.Left.OutSchema()
	if err != nil {
		return nil, err
	}
	rs, err := p.Right.OutSchema()
	if err != nil {
		return nil, err
	}
	rightKeys := make(map[int]bool, len(rk))
	for i := range lk {
		li := ls.Index(lk[i])
		if li < 0 {
			return nil, fmt.Errorf("engine: join key %q not in left input", lk[i])
		}
		ri := rs.Index(rk[i])
		if ri < 0 {
			return nil, fmt.Errorf("engine: join key %q not in right input", rk[i])
		}
		if t := ls.Fields[li].Type; t != columnar.Int64 {
			return nil, fmt.Errorf("engine: %w: left key %q has type %v (only BIGINT keys are hashable)", ErrJoinKey, lk[i], t)
		}
		if t := rs.Fields[ri].Type; t != columnar.Int64 {
			return nil, fmt.Errorf("engine: %w: right key %q has type %v (only BIGINT keys are hashable)", ErrJoinKey, rk[i], t)
		}
		rightKeys[ri] = true
	}
	out := &columnar.Schema{}
	out.Fields = append(out.Fields, ls.Fields...)
	for i, f := range rs.Fields {
		if rightKeys[i] {
			continue
		}
		if ls.Index(f.Name) >= 0 {
			return nil, fmt.Errorf("engine: duplicate column %q across join sides", f.Name)
		}
		out.Fields = append(out.Fields, f)
	}
	return out, nil
}

// Child returns the probe (left) side — the primary pipeline.
func (p *JoinPlan) Child() Plan { return p.Left }

// String describes the join.
func (p *JoinPlan) String() string {
	lk, rk := p.keyNames()
	pairs := make([]string, len(lk))
	for i := range lk {
		r := ""
		if i < len(rk) {
			r = rk[i]
		}
		pairs[i] = lk[i] + " = " + r
	}
	return "HashJoin " + strings.Join(pairs, ", ")
}

// joinMode selects the key addressing scheme of a joinTable, mirroring the
// aggBuilder group-addressing matrix: a direct-index table when the single
// int64 key spans a narrow range, open addressing on the raw int64 for a
// single wide key, and an encoded-string map only for the multi-key
// fallback.
type joinMode uint8

const (
	joinEmpty  joinMode = iota // empty build side: every probe misses
	joinDense                  // single int64 key, narrow range: direct index
	joinInt64                  // single int64 key: open addressing
	joinString                 // multi-key: encoded-string map
)

// maxDenseJoinSlots bounds the dense mode's direct-index table.
const maxDenseJoinSlots = 1 << 16

// joinPart is one hash partition of a sealed joinTable. Bucket resolution
// is open addressing (joinInt64: linear probing over keys/slot) or a Go map
// over encoded composite keys (joinString); matches are CSR row lists
// (starts/rows), ascending build-row order within every bucket so probe
// output matches the row-at-a-time reference order.
type joinPart struct {
	mask   uint64  // len(keys)-1, power of two (joinInt64)
	keys   []int64 // open-addressing key slots
	slot   []int32 // bucket ordinal + 1; 0 = empty
	smap   map[string]int32
	starts []int32
	rows   []int32
}

// joinTable is the sealed, shared build side of a hash join: built once
// (partition-parallel for the hashed modes), read-only afterwards, probed
// concurrently by every pipeline worker.
type joinTable struct {
	build  *columnar.Chunk // materialized build side, row order preserved
	keyIdx []int           // key column positions in build
	mode   joinMode

	// dense mode
	lo     int64
	span   int64
	starts []int32
	rows   []int32

	// hashed modes
	parts  []joinPart
	pmask  uint64   // len(parts)-1
	logP   uint     // bits consumed by partition selection
	hashes []uint64 // per-build-row key hashes, build-time only
}

// fnv1a hashes an encoded composite key for partition selection.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func nextPow2(n int) int {
	if n < 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// encodeJoinKey appends the composite key of build/probe row i to buf.
func encodeJoinKey(buf []byte, cols []*columnar.Vector, keyIdx []int, i int) []byte {
	for _, ki := range keyIdx {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(cols[ki].Int64s[i]))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// buildJoinTable seals the materialized build side into a shared join
// table. workers > 1 builds the hashed modes partition-parallel: each
// partition owns the keys hashing to it, so workers never contend and the
// per-bucket row lists stay in ascending build-row order regardless of the
// worker count — the probe output is byte-identical either way.
func buildJoinTable(build *columnar.Chunk, keyIdx []int, workers int) *joinTable {
	t := &joinTable{build: build, keyIdx: keyIdx}
	n := build.NumRows()
	if n == 0 {
		t.mode = joinEmpty
		return t
	}
	if len(keyIdx) == 1 {
		keys := build.Columns[keyIdx[0]].Int64s
		lo, hi := keys[0], keys[0]
		for _, k := range keys {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if span := uint64(hi) - uint64(lo); span < maxDenseJoinSlots && int64(span) <= 4*int64(n)+64 {
			t.buildDense(keys, lo, int64(span)+1)
			return t
		}
		t.mode = joinInt64
	} else {
		t.mode = joinString
	}

	// Hash every build row once, up front; partitions filter on the shared
	// hash array instead of each rehashing (or re-encoding) all n rows.
	t.hashes = make([]uint64, n)
	switch t.mode {
	case joinInt64:
		for i, k := range build.Columns[keyIdx[0]].Int64s {
			t.hashes[i] = columnar.Hash64(k)
		}
	case joinString:
		var buf []byte
		for i := 0; i < n; i++ {
			buf = encodeJoinKey(buf[:0], build.Columns, keyIdx, i)
			t.hashes[i] = fnv1a(buf)
		}
	}

	p := 1
	if workers > 1 && n >= 1024 {
		p = nextPow2(workers)
		if p > 16 {
			p = 16
		}
	}
	t.parts = make([]joinPart, p)
	t.pmask = uint64(p - 1)
	t.logP = uint(bits.TrailingZeros(uint(p)))
	if p == 1 {
		t.buildPart(0)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < p; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t.buildPart(i)
			}(i)
		}
		wg.Wait()
	}
	t.hashes = nil // build-time only; probes hash their own rows
	return t
}

// buildDense builds the direct-index mode with a counting sort: two passes,
// no hashing, per-slot row lists naturally ascending.
func (t *joinTable) buildDense(keys []int64, lo, span int64) {
	t.mode = joinDense
	t.lo, t.span = lo, span
	starts := make([]int32, span+1)
	for _, k := range keys {
		starts[k-lo+1]++
	}
	for i := int64(1); i <= span; i++ {
		starts[i] += starts[i-1]
	}
	rows := make([]int32, len(keys))
	cursor := make([]int32, span)
	copy(cursor, starts[:span])
	for i, k := range keys {
		s := k - lo
		rows[cursor[s]] = int32(i)
		cursor[s]++
	}
	t.starts, t.rows = starts, rows
}

// buildPart builds hash partition p: scan the build rows in order, keep the
// ones hashing to this partition, assign bucket ordinals, then seal the
// bucket row lists as CSR.
func (t *joinTable) buildPart(p int) {
	pt := &t.parts[p]
	var owned []int32
	var ords []int32
	var counts []int32

	// First pass: count the partition's rows (a scan of the precomputed
	// hash array) to size its table.
	cnt := 0
	for _, h := range t.hashes {
		if h&t.pmask == uint64(p) {
			cnt++
		}
	}
	if cnt == 0 {
		pt.starts = []int32{0}
		return
	}
	owned = make([]int32, 0, cnt)
	ords = make([]int32, 0, cnt)

	switch t.mode {
	case joinInt64:
		keys := t.build.Columns[t.keyIdx[0]].Int64s
		capacity := nextPow2(2 * cnt)
		if capacity < 8 {
			capacity = 8
		}
		pt.mask = uint64(capacity - 1)
		pt.keys = make([]int64, capacity)
		pt.slot = make([]int32, capacity)
		for i, h := range t.hashes {
			if h&t.pmask != uint64(p) {
				continue
			}
			k := keys[i]
			idx := (h >> t.logP) & pt.mask
			var ord int32
			for {
				s := pt.slot[idx]
				if s == 0 {
					ord = int32(len(counts))
					counts = append(counts, 0)
					pt.keys[idx] = k
					pt.slot[idx] = ord + 1
					break
				}
				if pt.keys[idx] == k {
					ord = s - 1
					break
				}
				idx = (idx + 1) & pt.mask
			}
			counts[ord]++
			owned = append(owned, int32(i))
			ords = append(ords, ord)
		}
	case joinString:
		cols := t.build.Columns
		pt.smap = make(map[string]int32, cnt)
		var buf []byte
		for i, h := range t.hashes {
			if h&t.pmask != uint64(p) {
				continue
			}
			// Only owned rows are re-encoded.
			buf = encodeJoinKey(buf[:0], cols, t.keyIdx, i)
			ord, ok := pt.smap[string(buf)]
			if !ok {
				ord = int32(len(counts))
				counts = append(counts, 0)
				pt.smap[string(buf)] = ord
			}
			counts[ord]++
			owned = append(owned, int32(i))
			ords = append(ords, ord)
		}
	}

	// Seal: CSR row lists, ascending build-row order within every bucket.
	pt.starts = make([]int32, len(counts)+1)
	for b, c := range counts {
		pt.starts[b+1] = pt.starts[b] + c
	}
	pt.rows = make([]int32, len(owned))
	cursor := make([]int32, len(counts))
	copy(cursor, pt.starts[:len(counts)])
	for j, i := range owned {
		b := ords[j]
		pt.rows[cursor[b]] = i
		cursor[b]++
	}
}

// probeChunk appends the (probe row, build row) match pairs of chunk c to
// the caller-owned selection vectors lsel/rsel, reusing keyBuf as the
// composite-key scratch. Pairs are emitted in (probe row asc, build row
// asc) order — the same order the row-at-a-time reference kernel produced.
func (t *joinTable) probeChunk(c *columnar.Chunk, leftKeyIdx []int, lsel, rsel []int, keyBuf []byte) ([]int, []int, []byte) {
	switch t.mode {
	case joinEmpty:
	case joinDense:
		ks := c.Columns[leftKeyIdx[0]].Int64s
		for row, k := range ks {
			off := k - t.lo
			if off < 0 || off >= t.span {
				continue
			}
			for _, m := range t.rows[t.starts[off]:t.starts[off+1]] {
				lsel = append(lsel, row)
				rsel = append(rsel, int(m))
			}
		}
	case joinInt64:
		ks := c.Columns[leftKeyIdx[0]].Int64s
		for row, k := range ks {
			h := columnar.Hash64(k)
			pt := &t.parts[h&t.pmask]
			if len(pt.slot) == 0 {
				continue
			}
			idx := (h >> t.logP) & pt.mask
			for {
				s := pt.slot[idx]
				if s == 0 {
					break
				}
				if pt.keys[idx] == k {
					b := s - 1
					for _, m := range pt.rows[pt.starts[b]:pt.starts[b+1]] {
						lsel = append(lsel, row)
						rsel = append(rsel, int(m))
					}
					break
				}
				idx = (idx + 1) & pt.mask
			}
		}
	case joinString:
		n := c.NumRows()
		for row := 0; row < n; row++ {
			keyBuf = encodeJoinKey(keyBuf[:0], c.Columns, leftKeyIdx, row)
			pt := &t.parts[fnv1a(keyBuf)&t.pmask]
			if pt.smap == nil {
				continue
			}
			if b, ok := pt.smap[string(keyBuf)]; ok {
				for _, m := range pt.rows[pt.starts[b]:pt.starts[b+1]] {
					lsel = append(lsel, row)
					rsel = append(rsel, int(m))
				}
			}
		}
	}
	return lsel, rsel, keyBuf
}
