package engine

import (
	"fmt"
	"sort"

	"lambada/internal/columnar"
)

// Catalog maps table names to scan sources.
type Catalog map[string]Source

// Resolve fills in the table schemas of all scans in the plan (both join
// sides included).
func Resolve(p Plan, cat Catalog) error {
	if p == nil {
		return nil
	}
	if s, ok := p.(*ScanPlan); ok {
		src, found := cat[s.Table]
		if !found {
			return fmt.Errorf("engine: unknown table %q", s.Table)
		}
		schema, err := src.Schema()
		if err != nil {
			return err
		}
		s.TableSchema = schema
		return nil
	}
	if j, ok := p.(*JoinPlan); ok {
		if err := Resolve(j.Right, cat); err != nil {
			return err
		}
		if err := Resolve(j.Left, cat); err != nil {
			return err
		}
		// Both sides' schemas are known now: repair key pairs written in
		// the wrong orientation (SQL's unqualified `ON s_suppkey =
		// l_suppkey` is assigned positionally by the parser).
		j.normalizeKeys()
		return nil
	}
	return Resolve(p.Child(), cat)
}

// Execute runs the plan and materializes its (small) result as one chunk.
// It is the pipeline-graph scheduler at parallelism 1: the plan is
// decomposed into a DAG of pipelines (see pipeline.go) and every pipeline
// runs inline on the caller's goroutine, chunk-at-a-time between breakers.
// ExecuteParallel with N pipelines produces byte-identical results.
func Execute(p Plan, cat Catalog) (*columnar.Chunk, error) {
	return ExecuteParallel(p, cat, ParallelConfig{Pipelines: 1})
}

// applyFilter evaluates pred and gathers the passing rows. It is the one
// filter kernel of the pipeline executor. sel is a caller-owned selection-
// vector scratch reused across chunks (pass nil the first time); the
// possibly-grown scratch is returned for the next call. Gather copies the
// selected rows, so reusing sel immediately is safe. When pool is non-nil
// a gathered result comes from the pool (pooled=true); the caller owns
// recycling it per the columnar.Pool contract.
func applyFilter(c *columnar.Chunk, pred Expr, sel []int, pool *columnar.Pool) (out *columnar.Chunk, selOut []int, pooled bool, err error) {
	sel, err = FilterSelection(c, pred, sel)
	if err != nil {
		return nil, sel, false, err
	}
	if len(sel) == c.NumRows() {
		return c, sel, false, nil
	}
	if pool != nil {
		out := pool.GetChunk(c.Schema, len(sel))
		out.AppendGather(c, sel)
		return out, sel, true, nil
	}
	return c.Gather(sel), sel, false, nil
}

// FilterSelection evaluates pred over c and returns the indices of passing
// rows, appended into the (reset) caller-owned scratch sel. It is the
// selection kernel shared by the pipeline filter stage and filterable
// sources' late-materialized scans.
func FilterSelection(c *columnar.Chunk, pred Expr, sel []int) ([]int, error) {
	v, err := pred.Eval(c)
	if err != nil {
		return sel, err
	}
	if v.Type != columnar.Bool {
		return sel, fmt.Errorf("engine: filter predicate of type %v", v.Type)
	}
	n := c.NumRows()
	sel = sel[:0]
	for i := 0; i < n; i++ {
		if v.Bools[i] {
			sel = append(sel, i)
		}
	}
	return sel, nil
}

// sortChunk sorts by keys, stable. Each key column is compared in its own
// type: int64 keys as int64 (a float64 comparison would silently collapse
// neighbouring keys beyond 2^53), float64 as float64, bool as false < true.
func sortChunk(c *columnar.Chunk, keys []OrderKey) (*columnar.Chunk, error) {
	idx := make([]int, c.NumRows())
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*columnar.Vector, len(keys))
	for i, k := range keys {
		cols[i] = c.Column(k.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: order key %q missing", k.Column)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range keys {
			var less bool
			switch cols[i].Type {
			case columnar.Int64:
				av, bv := cols[i].Int64s[idx[a]], cols[i].Int64s[idx[b]]
				if av == bv {
					continue
				}
				less = av < bv
			case columnar.Float64:
				av, bv := cols[i].Float64s[idx[a]], cols[i].Float64s[idx[b]]
				if av == bv {
					continue
				}
				less = av < bv
			default:
				av, bv := cols[i].Bools[idx[a]], cols[i].Bools[idx[b]]
				if av == bv {
					continue
				}
				less = !av
			}
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
	return c.Gather(idx), nil
}
