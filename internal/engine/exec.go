package engine

import (
	"fmt"
	"sort"

	"lambada/internal/columnar"
)

// Catalog maps table names to scan sources.
type Catalog map[string]Source

// Resolve fills in the table schemas of all scans in the plan (both join
// sides included).
func Resolve(p Plan, cat Catalog) error {
	if p == nil {
		return nil
	}
	if s, ok := p.(*ScanPlan); ok {
		src, found := cat[s.Table]
		if !found {
			return fmt.Errorf("engine: unknown table %q", s.Table)
		}
		schema, err := src.Schema()
		if err != nil {
			return err
		}
		s.TableSchema = schema
		return nil
	}
	if j, ok := p.(*JoinPlan); ok {
		if err := Resolve(j.Right, cat); err != nil {
			return err
		}
	}
	return Resolve(p.Child(), cat)
}

// Execute runs the plan and materializes its (small) result as one chunk.
// Pipelines between materialization points are fused: scan, filter and
// projection run chunk-at-a-time without intermediate materialization;
// aggregation, ordering and limits are pipeline breakers.
func Execute(p Plan, cat Catalog) (*columnar.Chunk, error) {
	if err := Resolve(p, cat); err != nil {
		return nil, err
	}
	schema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	out := columnar.NewChunk(schema, 0)
	err = executePush(p, cat, func(c *columnar.Chunk) error {
		out.AppendChunk(c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// executePush streams chunks bottom-up through fused pipelines.
func executePush(p Plan, cat Catalog, yield func(*columnar.Chunk) error) error {
	switch n := p.(type) {
	case *ScanPlan:
		src := cat[n.Table]
		if src == nil {
			return fmt.Errorf("engine: unknown table %q", n.Table)
		}
		var sel []int // selection vector reused across chunks
		return src.Scan(n.Projection, n.Prune, func(c *columnar.Chunk) error {
			if n.Filter != nil {
				fc, s, _, err := applyFilter(c, n.Filter, sel, nil)
				if err != nil {
					return err
				}
				c, sel = fc, s
			}
			return yield(c)
		})
	case *FilterPlan:
		var sel []int
		return executePush(n.In, cat, func(c *columnar.Chunk) error {
			fc, s, _, err := applyFilter(c, n.Pred, sel, nil)
			if err != nil {
				return err
			}
			sel = s
			return yield(fc)
		})
	case *ProjectPlan:
		outSchema, err := n.OutSchema()
		if err != nil {
			return err
		}
		return executePush(n.In, cat, func(c *columnar.Chunk) error {
			out := &columnar.Chunk{Schema: outSchema}
			for _, e := range n.Exprs {
				v, err := e.Eval(c)
				if err != nil {
					return err
				}
				out.Columns = append(out.Columns, v)
			}
			return yield(out)
		})
	case *AggregatePlan:
		res, err := runAggregate(n, cat)
		if err != nil {
			return err
		}
		return yield(res)
	case *JoinPlan:
		return runJoin(n, cat, yield)
	case *OrderByPlan:
		in, err := Execute(n.In, cat)
		if err != nil {
			return err
		}
		sorted, err := sortChunk(in, n.Keys)
		if err != nil {
			return err
		}
		return yield(sorted)
	case *LimitPlan:
		in, err := Execute(n.In, cat)
		if err != nil {
			return err
		}
		hi := n.N
		if hi > in.NumRows() {
			hi = in.NumRows()
		}
		return yield(in.Slice(0, hi))
	default:
		return fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// applyFilter evaluates pred and gathers the passing rows. It is the one
// filter kernel shared by the serial and morsel-driven executors. sel is a
// caller-owned selection-vector scratch reused across chunks (pass nil the
// first time); the possibly-grown scratch is returned for the next call.
// Gather copies the selected rows, so reusing sel immediately is safe.
// When pool is non-nil a gathered result comes from the pool (pooled=true);
// the caller owns recycling it per the columnar.Pool contract.
func applyFilter(c *columnar.Chunk, pred Expr, sel []int, pool *columnar.Pool) (out *columnar.Chunk, selOut []int, pooled bool, err error) {
	v, err := pred.Eval(c)
	if err != nil {
		return nil, sel, false, err
	}
	if v.Type != columnar.Bool {
		return nil, sel, false, fmt.Errorf("engine: filter predicate of type %v", v.Type)
	}
	n := c.NumRows()
	sel = sel[:0]
	for i := 0; i < n; i++ {
		if v.Bools[i] {
			sel = append(sel, i)
		}
	}
	if len(sel) == n {
		return c, sel, false, nil
	}
	if pool != nil {
		out := pool.GetChunk(c.Schema, len(sel))
		out.AppendGather(c, sel)
		return out, sel, true, nil
	}
	return c.Gather(sel), sel, false, nil
}

// sortChunk sorts by keys, stable. Each key column is compared in its own
// type: int64 keys as int64 (a float64 comparison would silently collapse
// neighbouring keys beyond 2^53), float64 as float64, bool as false < true.
func sortChunk(c *columnar.Chunk, keys []OrderKey) (*columnar.Chunk, error) {
	idx := make([]int, c.NumRows())
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*columnar.Vector, len(keys))
	for i, k := range keys {
		cols[i] = c.Column(k.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: order key %q missing", k.Column)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range keys {
			var less bool
			switch cols[i].Type {
			case columnar.Int64:
				av, bv := cols[i].Int64s[idx[a]], cols[i].Int64s[idx[b]]
				if av == bv {
					continue
				}
				less = av < bv
			case columnar.Float64:
				av, bv := cols[i].Float64s[idx[a]], cols[i].Float64s[idx[b]]
				if av == bv {
					continue
				}
				less = av < bv
			default:
				av, bv := cols[i].Bools[idx[a]], cols[i].Bools[idx[b]]
				if av == bv {
					continue
				}
				less = !av
			}
			if k.Desc {
				return !less
			}
			return less
		}
		return false
	})
	return c.Gather(idx), nil
}
