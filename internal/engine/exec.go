package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lambada/internal/columnar"
)

// Catalog maps table names to scan sources.
type Catalog map[string]Source

// Resolve fills in the table schemas of all scans in the plan (both join
// sides included).
func Resolve(p Plan, cat Catalog) error {
	if p == nil {
		return nil
	}
	if s, ok := p.(*ScanPlan); ok {
		src, found := cat[s.Table]
		if !found {
			return fmt.Errorf("engine: unknown table %q", s.Table)
		}
		schema, err := src.Schema()
		if err != nil {
			return err
		}
		s.TableSchema = schema
		return nil
	}
	if j, ok := p.(*JoinPlan); ok {
		if err := Resolve(j.Right, cat); err != nil {
			return err
		}
	}
	return Resolve(p.Child(), cat)
}

// Execute runs the plan and materializes its (small) result as one chunk.
// Pipelines between materialization points are fused: scan, filter and
// projection run chunk-at-a-time without intermediate materialization;
// aggregation, ordering and limits are pipeline breakers.
func Execute(p Plan, cat Catalog) (*columnar.Chunk, error) {
	if err := Resolve(p, cat); err != nil {
		return nil, err
	}
	schema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	out := columnar.NewChunk(schema, 0)
	err = executePush(p, cat, func(c *columnar.Chunk) error {
		for j := range out.Columns {
			appendVec(out.Columns[j], c.Columns[j])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func appendVec(dst, src *columnar.Vector) {
	switch dst.Type {
	case columnar.Int64:
		dst.Int64s = append(dst.Int64s, src.Int64s...)
	case columnar.Float64:
		dst.Float64s = append(dst.Float64s, src.Float64s...)
	case columnar.Bool:
		dst.Bools = append(dst.Bools, src.Bools...)
	}
}

// executePush streams chunks bottom-up through fused pipelines.
func executePush(p Plan, cat Catalog, yield func(*columnar.Chunk) error) error {
	switch n := p.(type) {
	case *ScanPlan:
		src := cat[n.Table]
		if src == nil {
			return fmt.Errorf("engine: unknown table %q", n.Table)
		}
		return src.Scan(n.Projection, n.Prune, func(c *columnar.Chunk) error {
			if n.Filter != nil {
				fc, err := applyFilter(c, n.Filter)
				if err != nil {
					return err
				}
				c = fc
			}
			return yield(c)
		})
	case *FilterPlan:
		return executePush(n.In, cat, func(c *columnar.Chunk) error {
			fc, err := applyFilter(c, n.Pred)
			if err != nil {
				return err
			}
			return yield(fc)
		})
	case *ProjectPlan:
		outSchema, err := n.OutSchema()
		if err != nil {
			return err
		}
		return executePush(n.In, cat, func(c *columnar.Chunk) error {
			out := &columnar.Chunk{Schema: outSchema}
			for _, e := range n.Exprs {
				v, err := e.Eval(c)
				if err != nil {
					return err
				}
				out.Columns = append(out.Columns, v)
			}
			return yield(out)
		})
	case *AggregatePlan:
		res, err := runAggregate(n, cat)
		if err != nil {
			return err
		}
		return yield(res)
	case *JoinPlan:
		return runJoin(n, cat, yield)
	case *OrderByPlan:
		in, err := Execute(n.In, cat)
		if err != nil {
			return err
		}
		sorted, err := sortChunk(in, n.Keys)
		if err != nil {
			return err
		}
		return yield(sorted)
	case *LimitPlan:
		in, err := Execute(n.In, cat)
		if err != nil {
			return err
		}
		hi := n.N
		if hi > in.NumRows() {
			hi = in.NumRows()
		}
		return yield(in.Slice(0, hi))
	default:
		return fmt.Errorf("engine: unknown plan node %T", p)
	}
}

// applyFilter evaluates pred and gathers the passing rows.
func applyFilter(c *columnar.Chunk, pred Expr) (*columnar.Chunk, error) {
	v, err := pred.Eval(c)
	if err != nil {
		return nil, err
	}
	if v.Type != columnar.Bool {
		return nil, fmt.Errorf("engine: filter predicate of type %v", v.Type)
	}
	n := c.NumRows()
	sel := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if v.Bools[i] {
			sel = append(sel, i)
		}
	}
	if len(sel) == n {
		return c, nil
	}
	return c.Gather(sel), nil
}

// aggState is the running state of one group.
type aggState struct {
	keys []int64 // group key values (int64-encoded)
	// Per aggregate: sum/min/max as float64 and int64 variants plus count.
	sums   []float64
	isums  []int64
	mins   []float64
	maxs   []float64
	counts []int64
	seen   []bool
}

func runAggregate(p *AggregatePlan, cat Catalog) (*columnar.Chunk, error) {
	inSchema, err := p.In.OutSchema()
	if err != nil {
		return nil, err
	}
	outSchema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, len(p.GroupBy))
	for i, g := range p.GroupBy {
		keyIdx[i] = inSchema.Index(g)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("engine: group key %q missing", g)
		}
		if t := inSchema.Fields[keyIdx[i]].Type; t == columnar.Float64 {
			return nil, fmt.Errorf("engine: float group key %q not supported", g)
		}
	}

	groups := make(map[string]*aggState)
	var order []string // deterministic output order (first-seen)

	err = executePush(p.In, cat, func(c *columnar.Chunk) error {
		n := c.NumRows()
		if n == 0 {
			return nil
		}
		// Evaluate aggregate arguments once per chunk (vectorized).
		args := make([]*columnar.Vector, len(p.Aggs))
		for ai, a := range p.Aggs {
			if a.Arg != nil {
				v, err := a.Arg.Eval(c)
				if err != nil {
					return err
				}
				args[ai] = v
			}
		}
		var keyBuf []byte
		for i := 0; i < n; i++ {
			keyBuf = keyBuf[:0]
			for _, ki := range keyIdx {
				var tmp [8]byte
				binary.LittleEndian.PutUint64(tmp[:], uint64(c.Columns[ki].Int64At(i)))
				keyBuf = append(keyBuf, tmp[:]...)
			}
			k := string(keyBuf)
			st := groups[k]
			if st == nil {
				st = &aggState{
					keys:   make([]int64, len(keyIdx)),
					sums:   make([]float64, len(p.Aggs)),
					isums:  make([]int64, len(p.Aggs)),
					mins:   make([]float64, len(p.Aggs)),
					maxs:   make([]float64, len(p.Aggs)),
					counts: make([]int64, len(p.Aggs)),
					seen:   make([]bool, len(p.Aggs)),
				}
				for j, ki := range keyIdx {
					st.keys[j] = c.Columns[ki].Int64At(i)
				}
				groups[k] = st
				order = append(order, k)
			}
			for ai := range p.Aggs {
				var fv float64
				var iv int64
				if args[ai] != nil {
					fv = args[ai].Float64At(i)
					iv = args[ai].Int64At(i)
				}
				st.counts[ai]++
				st.sums[ai] += fv
				st.isums[ai] += iv
				if !st.seen[ai] || fv < st.mins[ai] {
					st.mins[ai] = fv
				}
				if !st.seen[ai] || fv > st.maxs[ai] {
					st.maxs[ai] = fv
				}
				st.seen[ai] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := columnar.NewChunk(outSchema, len(order))
	// A global aggregate over empty input still yields one row of zeros
	// (COUNT = 0), matching SQL semantics.
	if len(p.GroupBy) == 0 && len(order) == 0 {
		empty := &aggState{
			sums:   make([]float64, len(p.Aggs)),
			isums:  make([]int64, len(p.Aggs)),
			mins:   make([]float64, len(p.Aggs)),
			maxs:   make([]float64, len(p.Aggs)),
			counts: make([]int64, len(p.Aggs)),
		}
		groups[""] = empty
		order = append(order, "")
	}
	for _, k := range order {
		st := groups[k]
		col := 0
		for range p.GroupBy {
			out.Columns[col].AppendInt64(st.keys[col])
			col++
		}
		for ai, a := range p.Aggs {
			switch a.Func {
			case AggCount:
				out.Columns[col].AppendInt64(st.counts[ai])
			case AggSum:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(st.isums[ai])
				} else {
					out.Columns[col].AppendFloat64(st.sums[ai])
				}
			case AggAvg:
				if st.counts[ai] == 0 {
					out.Columns[col].AppendFloat64(math.NaN())
				} else {
					out.Columns[col].AppendFloat64(st.sums[ai] / float64(st.counts[ai]))
				}
			case AggMin:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(int64(st.mins[ai]))
				} else {
					out.Columns[col].AppendFloat64(st.mins[ai])
				}
			case AggMax:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(int64(st.maxs[ai]))
				} else {
					out.Columns[col].AppendFloat64(st.maxs[ai])
				}
			}
			col++
		}
	}
	return out, nil
}

// sortChunk sorts by keys, stable.
func sortChunk(c *columnar.Chunk, keys []OrderKey) (*columnar.Chunk, error) {
	idx := make([]int, c.NumRows())
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*columnar.Vector, len(keys))
	for i, k := range keys {
		cols[i] = c.Column(k.Column)
		if cols[i] == nil {
			return nil, fmt.Errorf("engine: order key %q missing", k.Column)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for i, k := range keys {
			av, bv := cols[i].Float64At(idx[a]), cols[i].Float64At(idx[b])
			if av == bv {
				continue
			}
			if k.Desc {
				return av > bv
			}
			return av < bv
		}
		return false
	})
	return c.Gather(idx), nil
}
