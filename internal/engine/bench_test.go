package engine

import (
	"fmt"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/tpch"
)

func benchCatalog(b *testing.B) (Catalog, int64) {
	b.Helper()
	data := tpch.Gen{SF: 0.01, Seed: 1}.Generate()
	return Catalog{"lineitem": NewMemSource(tpch.Schema(), data)}, data.ByteSize()
}

func BenchmarkExecuteQ1(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteQ6(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan, err := Optimize(q6Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterEval(b *testing.B) {
	data := tpch.Gen{SF: 0.01, Seed: 1}.Generate()
	pred := And(
		NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
		NewBin(OpLT, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateHi)),
		NewBin(OpLT, Col("l_quantity"), ConstFloat(24)),
	)
	b.SetBytes(int64(data.NumRows()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Eval(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan := &AggregatePlan{
		GroupBy: []string{"l_suppkey"},
		Aggs: []AggSpec{
			{Func: AggSum, Arg: Col("l_extendedprice"), Name: "s"},
			{Func: AggCount, Name: "n"},
		},
		In: &ScanPlan{Table: "lineitem"},
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAggregate runs Q1 over a many-chunk source with the
// morsel-driven executor at increasing pipeline counts (workers=1 is the
// serial executor, for comparison).
func BenchmarkParallelAggregate(b *testing.B) {
	data := tpch.Gen{SF: 0.05, Seed: 1}.Generate()
	const rowsPerChunk = 8192
	var parts []*columnar.Chunk
	for lo := 0; lo < data.NumRows(); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > data.NumRows() {
			hi = data.NumRows()
		}
		parts = append(parts, data.Slice(lo, hi))
	}
	cat := Catalog{"lineitem": NewMemSource(tpch.Schema(), parts...)}
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pipelines=%d", workers), func(b *testing.B) {
			b.SetBytes(data.ByteSize())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteParallel(plan, cat, ParallelConfig{Pipelines: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPlanMarshalRoundTrip(b *testing.B) {
	cat, _ := benchCatalog(b)
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := MarshalPlan(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalPlan(raw); err != nil {
			b.Fatal(err)
		}
	}
}
