package engine

import (
	"fmt"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/tpch"
)

func benchCatalog(b *testing.B) (Catalog, int64) {
	b.Helper()
	data := tpch.Gen{SF: 0.01, Seed: 1}.Generate()
	return Catalog{"lineitem": NewMemSource(tpch.Schema(), data)}, data.ByteSize()
}

func BenchmarkExecuteQ1(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteQ6(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan, err := Optimize(q6Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterEval(b *testing.B) {
	data := tpch.Gen{SF: 0.01, Seed: 1}.Generate()
	pred := And(
		NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
		NewBin(OpLT, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateHi)),
		NewBin(OpLT, Col("l_quantity"), ConstFloat(24)),
	)
	b.SetBytes(int64(data.NumRows()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Eval(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupByAggregate(b *testing.B) {
	cat, bytes := benchCatalog(b)
	plan := &AggregatePlan{
		GroupBy: []string{"l_suppkey"},
		Aggs: []AggSpec{
			{Func: AggSum, Arg: Col("l_extendedprice"), Name: "s"},
			{Func: AggCount, Name: "n"},
		},
		In: &ScanPlan{Table: "lineitem"},
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(plan, cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAggregate runs Q1 over a many-chunk source with the
// morsel-driven executor at increasing pipeline counts (workers=1 is the
// serial executor, for comparison).
func BenchmarkParallelAggregate(b *testing.B) {
	data := tpch.Gen{SF: 0.05, Seed: 1}.Generate()
	const rowsPerChunk = 8192
	var parts []*columnar.Chunk
	for lo := 0; lo < data.NumRows(); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > data.NumRows() {
			hi = data.NumRows()
		}
		parts = append(parts, data.Slice(lo, hi))
	}
	cat := Catalog{"lineitem": NewMemSource(tpch.Schema(), parts...)}
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pipelines=%d", workers), func(b *testing.B) {
			b.SetBytes(data.ByteSize())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteParallel(plan, cat, ParallelConfig{Pipelines: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// joinBenchSetup: many-chunk LINEITEM probe side, SUPPLIER build side.
func joinBenchSetup(b *testing.B) (Catalog, *columnar.Chunk, int64) {
	b.Helper()
	data := tpch.Gen{SF: 0.02, Seed: 1}.Generate()
	const rowsPerChunk = 4096
	var parts []*columnar.Chunk
	for lo := 0; lo < data.NumRows(); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > data.NumRows() {
			hi = data.NumRows()
		}
		parts = append(parts, data.Slice(lo, hi))
	}
	sup := tpch.Gen{SF: 0.02, Seed: 1}.Supplier()
	cat := Catalog{
		"lineitem": NewMemSource(tpch.Schema(), parts...),
		"supplier": NewMemSource(tpch.SupplierSchema(), sup),
	}
	return cat, sup, data.ByteSize()
}

func joinBenchPlan() *JoinPlan {
	return &JoinPlan{
		Left:    &ScanPlan{Table: "lineitem"},
		Right:   &ScanPlan{Table: "supplier"},
		LeftKey: "l_suppkey", RightKey: "s_suppkey",
	}
}

// BenchmarkHashJoin measures the sealed-table join kernel on the pipeline
// scheduler at 1 and 4 pipelines (allocs/op is the headline: the sealed
// CSR table and selection-vector gather replace the seed's map[int64][]int
// build and row-at-a-time appends).
func BenchmarkHashJoin(b *testing.B) {
	cat, _, bytes := joinBenchSetup(b)
	for _, pipelines := range []int{1, 4} {
		b.Run(fmt.Sprintf("pipelines=%d", pipelines), func(b *testing.B) {
			plan := joinBenchPlan()
			if err := Resolve(plan, cat); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(bytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ExecuteParallel(plan, cat, ParallelConfig{Pipelines: pipelines}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoinSeedMap is the seed kernel kept for comparison: build a
// map[int64][]int row index, probe row-at-a-time with per-match column
// appends — the allocation baseline BenchmarkHashJoin is measured against.
func BenchmarkHashJoinSeedMap(b *testing.B) {
	cat, sup, bytes := joinBenchSetup(b)
	plan := joinBenchPlan()
	if err := Resolve(plan, cat); err != nil {
		b.Fatal(err)
	}
	outSchema, err := plan.OutSchema()
	if err != nil {
		b.Fatal(err)
	}
	ls, err := plan.Left.OutSchema()
	if err != nil {
		b.Fatal(err)
	}
	li := ls.Index(plan.LeftKey)
	nLeft := ls.Len()
	ri := sup.Schema.Index(plan.RightKey)
	src := cat["lineitem"]
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		build := make(map[int64][]int, sup.NumRows())
		for r := 0; r < sup.NumRows(); r++ {
			k := sup.Columns[ri].Int64At(r)
			build[k] = append(build[k], r)
		}
		result := columnar.NewChunk(outSchema, 0)
		err := src.Scan(nil, nil, func(c *columnar.Chunk) error {
			out := columnar.NewChunk(outSchema, c.NumRows())
			keys := c.Columns[li]
			for row := 0; row < c.NumRows(); row++ {
				for _, m := range build[keys.Int64At(row)] {
					for j := 0; j < nLeft; j++ {
						out.Columns[j].Append(c.Columns[j], row)
					}
					col := nLeft
					for j := 0; j < sup.Schema.Len(); j++ {
						if j == ri {
							continue
						}
						out.Columns[col].Append(sup.Columns[j], m)
						col++
					}
				}
			}
			result.AppendChunk(out)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanMarshalRoundTrip(b *testing.B) {
	cat, _ := benchCatalog(b)
	plan, err := Optimize(q1Plan(), cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := MarshalPlan(plan)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := UnmarshalPlan(raw); err != nil {
			b.Fatal(err)
		}
	}
}
