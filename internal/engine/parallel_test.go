package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

// chunksIdentical asserts byte-identical results: same schema, same row
// order, float64 compared by bits.
func chunksIdentical(t *testing.T, got, want *columnar.Chunk) {
	t.Helper()
	if !got.Schema.Equal(want.Schema) {
		t.Fatalf("schema = %v, want %v", got.Schema, want.Schema)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for j := range want.Columns {
		g, w := got.Columns[j], want.Columns[j]
		for i := 0; i < want.NumRows(); i++ {
			switch w.Type {
			case columnar.Int64:
				if g.Int64s[i] != w.Int64s[i] {
					t.Fatalf("col %d row %d = %d, want %d", j, i, g.Int64s[i], w.Int64s[i])
				}
			case columnar.Float64:
				if math.Float64bits(g.Float64s[i]) != math.Float64bits(w.Float64s[i]) {
					t.Fatalf("col %d row %d = %x, want %x (values %v vs %v)",
						j, i, math.Float64bits(g.Float64s[i]), math.Float64bits(w.Float64s[i]), g.Float64s[i], w.Float64s[i])
				}
			case columnar.Bool:
				if g.Bools[i] != w.Bools[i] {
					t.Fatalf("col %d row %d = %v, want %v", j, i, g.Bools[i], w.Bools[i])
				}
			}
		}
	}
}

// chunkedLineitem splits one generated table into many chunks so the
// parallel executor sees plenty of morsels.
func chunkedLineitem(t *testing.T, sf float64, rowsPerChunk int) (*MemSource, *columnar.Chunk) {
	t.Helper()
	data := tpch.Gen{SF: sf, Seed: 7}.Generate()
	var chunks []*columnar.Chunk
	for lo := 0; lo < data.NumRows(); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > data.NumRows() {
			hi = data.NumRows()
		}
		chunks = append(chunks, data.Slice(lo, hi))
	}
	return NewMemSource(tpch.Schema(), chunks...), data
}

func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	src, _ := chunkedLineitem(t, 0.01, 1000)
	cat := Catalog{"lineitem": src}

	plans := map[string]func() Plan{
		"q1": q1Plan, // two-key group by, 8 aggregates, order by
		"q6": q6Plan, // global float aggregate behind a filter
		"single-int64-key": func() Plan {
			return &AggregatePlan{
				GroupBy: []string{"l_suppkey"},
				Aggs: []AggSpec{
					{Func: AggSum, Arg: Col("l_extendedprice"), Name: "s"},
					{Func: AggCount, Name: "n"},
					{Func: AggMin, Arg: Col("l_quantity"), Name: "mn"},
					{Func: AggMax, Arg: Col("l_quantity"), Name: "mx"},
					{Func: AggAvg, Arg: Col("l_discount"), Name: "av"},
				},
				In: &ScanPlan{Table: "lineitem"},
			}
		},
		"filter-project": func() Plan {
			return &ProjectPlan{
				Exprs: []Expr{Col("l_orderkey"), NewBin(OpMul, Col("l_extendedprice"), Col("l_discount"))},
				Names: []string{"k", "v"},
				In: &FilterPlan{
					Pred: NewBin(OpLT, Col("l_quantity"), ConstFloat(25)),
					In:   &ScanPlan{Table: "lineitem"},
				},
			}
		},
		"order-by-limit": func() Plan {
			return &LimitPlan{N: 100, In: &OrderByPlan{
				Keys: []OrderKey{{Column: "l_extendedprice", Desc: true}},
				In: &FilterPlan{
					Pred: NewBin(OpLT, Col("l_suppkey"), ConstInt(50)),
					In:   &ScanPlan{Table: "lineitem"},
				},
			}}
		},
	}
	for name, mk := range plans {
		for _, workers := range []int{2, 4, 8} {
			serial, err := Execute(mk(), cat)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			par, err := ExecuteParallel(mk(), cat, ParallelConfig{Pipelines: workers})
			if err != nil {
				t.Fatalf("%s parallel(%d): %v", name, workers, err)
			}
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				chunksIdentical(t, par, serial)
			})
		}
	}
}

func TestParallelAggregatePartitionsAndTies(t *testing.T) {
	// ≥4 distinct partitions with heavy ties: key column cycles 0..4.
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	var chunks []*columnar.Chunk
	rows := 0
	for c := 0; c < 16; c++ {
		ch := columnar.NewChunk(schema, 64)
		for i := 0; i < 64; i++ {
			ch.Columns[0].AppendInt64(int64(rows % 5))
			ch.Columns[1].AppendFloat64(float64(rows) * 0.25)
			rows++
		}
		chunks = append(chunks, ch)
	}
	cat := Catalog{"t": NewMemSource(schema, chunks...)}
	mk := func() Plan {
		return &AggregatePlan{
			GroupBy: []string{"k"},
			Aggs: []AggSpec{
				{Func: AggSum, Arg: Col("v"), Name: "s"},
				{Func: AggCount, Name: "n"},
			},
			In: &ScanPlan{Table: "t"},
		}
	}
	serial, err := Execute(mk(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumRows() != 5 {
		t.Fatalf("groups = %d, want 5", serial.NumRows())
	}
	// First-seen order: keys 0,1,2,3,4.
	for i := 0; i < 5; i++ {
		if got := serial.Column("k").Int64s[i]; got != int64(i) {
			t.Fatalf("group %d key = %d (first-seen order broken)", i, got)
		}
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := ExecuteParallel(mk(), cat, ParallelConfig{Pipelines: workers})
		if err != nil {
			t.Fatal(err)
		}
		chunksIdentical(t, par, serial)
	}
}

func TestParallelEmptyInput(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	cat := Catalog{"t": NewMemSource(schema)}

	// Grouped aggregate over empty input: zero rows.
	grouped := &AggregatePlan{
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "n"}},
		In:      &ScanPlan{Table: "t"},
	}
	out, err := ExecuteParallel(grouped, cat, ParallelConfig{Pipelines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Errorf("grouped empty input rows = %d, want 0", out.NumRows())
	}

	// Global aggregate over empty input: one zero row, like the serial path.
	global := &AggregatePlan{
		Aggs: []AggSpec{{Func: AggCount, Name: "n"}, {Func: AggSum, Arg: Col("k"), Name: "s"}},
		In:   &ScanPlan{Table: "t"},
	}
	serial, err := Execute(global, cat)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecuteParallel(global, cat, ParallelConfig{Pipelines: 4})
	if err != nil {
		t.Fatal(err)
	}
	chunksIdentical(t, par, serial)
	if par.NumRows() != 1 || par.Column("n").Int64s[0] != 0 {
		t.Errorf("global empty input = %d rows, n = %v", par.NumRows(), par.Column("n").Int64s)
	}
}

// errSource yields a few chunks, then fails.
type errSource struct {
	schema *columnar.Schema
	good   []*columnar.Chunk
	err    error
}

func (s *errSource) Schema() (*columnar.Schema, error) { return s.schema, nil }

func (s *errSource) Scan(proj []string, _ []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	for _, c := range s.good {
		if err := yield(c); err != nil {
			return err
		}
	}
	return s.err
}

func TestParallelCancelOnError(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	var chunks []*columnar.Chunk
	for i := 0; i < 32; i++ {
		ch := columnar.NewChunk(schema, 8)
		for j := 0; j < 8; j++ {
			ch.Columns[0].AppendInt64(int64(j))
		}
		chunks = append(chunks, ch)
	}
	boom := errors.New("boom")
	cat := Catalog{"t": &errSource{schema: schema, good: chunks, err: boom}}
	plan := &AggregatePlan{
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "n"}},
		In:      &ScanPlan{Table: "t"},
	}
	if _, err := ExecuteParallel(plan, cat, ParallelConfig{Pipelines: 4}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// A mid-pipeline expression error must cancel the scan, not hang.
	badPlan := &AggregatePlan{
		Aggs: []AggSpec{{Func: AggSum, Arg: Col("missing"), Name: "s"}},
		In:   &ScanPlan{Table: "t"},
	}
	if _, err := ExecuteParallel(badPlan, cat, ParallelConfig{Pipelines: 4}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want unknown-column error", err)
	}
}

// TestParallelJoinByteIdentical: joins run on the same pipeline-graph
// scheduler as everything else (no serial fallback remains), and the
// parallel result is byte-identical to the serial one.
func TestParallelJoinByteIdentical(t *testing.T) {
	src, _ := chunkedLineitem(t, 0.002, 500)
	small := columnar.NewChunk(columnar.NewSchema(
		columnar.Field{Name: "s_suppkey", Type: columnar.Int64},
		columnar.Field{Name: "s_name", Type: columnar.Int64},
	), 4)
	for i := 0; i < 4; i++ {
		small.Columns[0].AppendInt64(int64(i + 1))
		small.Columns[1].AppendInt64(int64(100 + i))
	}
	cat := Catalog{
		"lineitem": src,
		"supplier": NewMemSource(small.Schema, small),
	}
	mk := func() Plan {
		return &JoinPlan{
			Left:     &ScanPlan{Table: "lineitem"},
			Right:    &ScanPlan{Table: "supplier"},
			LeftKey:  "l_suppkey",
			RightKey: "s_suppkey",
		}
	}
	serial, err := Execute(mk(), cat)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ExecuteParallel(mk(), cat, ParallelConfig{Pipelines: 4})
	if err != nil {
		t.Fatal(err)
	}
	chunksIdentical(t, par, serial)
}

func TestSortChunkInt64PrecisionRegression(t *testing.T) {
	// Keys adjacent near MaxInt64 are indistinguishable as float64; the
	// sort must compare them as int64.
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 4)
	hi := int64(math.MaxInt64)
	for _, k := range []int64{hi - 1, hi, hi - 2, hi - 3} {
		c.Columns[0].AppendInt64(k)
	}
	sorted, err := sortChunk(c, []OrderKey{{Column: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{hi - 3, hi - 2, hi - 1, hi}
	for i, w := range want {
		if got := sorted.Column("k").Int64s[i]; got != w {
			t.Fatalf("row %d = %d, want %d (float64 key comparison lost precision)", i, got, w)
		}
	}
	desc, err := sortChunk(c, []OrderKey{{Column: "k", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []int64{hi, hi - 1, hi - 2, hi - 3} {
		if got := desc.Column("k").Int64s[i]; got != w {
			t.Fatalf("desc row %d = %d, want %d", i, got, w)
		}
	}
}

func TestAggregateGroupKeysBeyondFloat53(t *testing.T) {
	// Group keys that collide as float64 must stay distinct groups.
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 6)
	base := int64(1) << 60
	for _, k := range []int64{base, base + 1, base, base + 1, base + 2, base} {
		c.Columns[0].AppendInt64(k)
	}
	cat := Catalog{"t": NewMemSource(schema, c)}
	plan := &AggregatePlan{
		GroupBy: []string{"k"},
		Aggs:    []AggSpec{{Func: AggCount, Name: "n"}},
		In:      &ScanPlan{Table: "t"},
	}
	for _, exec := range []func() (*columnar.Chunk, error){
		func() (*columnar.Chunk, error) { return Execute(plan, cat) },
		func() (*columnar.Chunk, error) { return ExecuteParallel(plan, cat, ParallelConfig{Pipelines: 4}) },
	} {
		out, err := exec()
		if err != nil {
			t.Fatal(err)
		}
		if out.NumRows() != 3 {
			t.Fatalf("groups = %d, want 3", out.NumRows())
		}
		wantKeys := []int64{base, base + 1, base + 2}
		wantN := []int64{3, 2, 1}
		for i := range wantKeys {
			if out.Column("k").Int64s[i] != wantKeys[i] || out.Column("n").Int64s[i] != wantN[i] {
				t.Fatalf("group %d = (%d, %d), want (%d, %d)",
					i, out.Column("k").Int64s[i], out.Column("n").Int64s[i], wantKeys[i], wantN[i])
			}
		}
	}
}
