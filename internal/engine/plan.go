package engine

import (
	"fmt"
	"strings"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Source abstracts where a scan's chunks come from: an in-memory table, a
// local lpq file, or the S3-backed Parquet scan operator. Implementations
// receive the pushed-down projection and prunable predicates.
type Source interface {
	// Schema returns the source's full schema.
	Schema() (*columnar.Schema, error)
	// Scan yields chunks restricted to proj columns (nil = all) after
	// pruning row groups that cannot match preds.
	Scan(proj []string, preds []lpq.Predicate, yield func(*columnar.Chunk) error) error
}

// FilterableSource is a Source that evaluates the scan's residual filter
// itself and yields pre-filtered chunks, enabling late materialization:
// fetch the filter's columns first, and fetch payload columns only where
// the selection is non-empty. The optimizer guarantees preds are implied by
// filter (ExtractPrunePredicates runs on the pushed-down filter), so
// implementations may use either freely. Pipelines skip their own filter
// stage when the source implements this interface.
type FilterableSource interface {
	Source
	// ScanFiltered yields proj-restricted chunks containing exactly the
	// rows satisfying filter (never nil when the source is filterable).
	ScanFiltered(proj []string, preds []lpq.Predicate, filter Expr, yield func(*columnar.Chunk) error) error
}

// AggFunc is an aggregate function kind.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggAvg
	AggMin
	AggMax
)

var aggNames = map[AggFunc]string{
	AggSum: "SUM", AggCount: "COUNT", AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
}

// String names the function.
func (f AggFunc) String() string { return aggNames[f] }

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	// Arg is the aggregated expression (nil for COUNT(*)).
	Arg Expr
	// Name is the output column name.
	Name string
}

// String renders e.g. "SUM(x) AS s".
func (a AggSpec) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Name)
}

// Plan is a logical query plan node.
type Plan interface {
	// OutSchema computes the node's output schema.
	OutSchema() (*columnar.Schema, error)
	// Child returns the input plan (nil for leaves).
	Child() Plan
	// String renders one line describing the node.
	String() string
}

// ScanPlan reads a table from a source.
type ScanPlan struct {
	// Table names the source in the executor's catalog.
	Table string
	// Projection restricts the columns read (nil = all); filled in by the
	// optimizer's projection push-down.
	Projection []string
	// Filter is a pushed-down predicate evaluated right after each chunk
	// is materialized.
	Filter Expr
	// Prune holds min/max-testable predicates used for row-group pruning.
	Prune []lpq.Predicate
	// schema is the resolved source schema (set by the planner).
	TableSchema *columnar.Schema
}

// OutSchema returns the projected schema.
func (p *ScanPlan) OutSchema() (*columnar.Schema, error) {
	if p.TableSchema == nil {
		return nil, fmt.Errorf("engine: scan of %q has no resolved schema", p.Table)
	}
	if p.Projection == nil {
		return p.TableSchema, nil
	}
	return p.TableSchema.Project(p.Projection...)
}

// Child returns nil.
func (p *ScanPlan) Child() Plan { return nil }

// String describes the scan.
func (p *ScanPlan) String() string {
	s := "Scan " + p.Table
	if p.Projection != nil {
		s += " [" + strings.Join(p.Projection, ", ") + "]"
	}
	if p.Filter != nil {
		s += " filter=" + p.Filter.String()
	}
	if len(p.Prune) > 0 {
		s += fmt.Sprintf(" prune=%d", len(p.Prune))
	}
	return s
}

// FilterPlan keeps rows where Pred is true.
type FilterPlan struct {
	In   Plan
	Pred Expr
}

// OutSchema passes through.
func (p *FilterPlan) OutSchema() (*columnar.Schema, error) { return p.In.OutSchema() }

// Child returns the input.
func (p *FilterPlan) Child() Plan { return p.In }

// String describes the filter.
func (p *FilterPlan) String() string { return "Filter " + p.Pred.String() }

// ProjectPlan computes named expressions.
type ProjectPlan struct {
	In    Plan
	Exprs []Expr
	Names []string
}

// OutSchema types each expression.
func (p *ProjectPlan) OutSchema() (*columnar.Schema, error) {
	in, err := p.In.OutSchema()
	if err != nil {
		return nil, err
	}
	out := &columnar.Schema{}
	for i, e := range p.Exprs {
		t, err := e.Type(in)
		if err != nil {
			return nil, err
		}
		out.Fields = append(out.Fields, columnar.Field{Name: p.Names[i], Type: t})
	}
	return out, nil
}

// Child returns the input.
func (p *ProjectPlan) Child() Plan { return p.In }

// String describes the projection.
func (p *ProjectPlan) String() string {
	parts := make([]string, len(p.Exprs))
	for i := range p.Exprs {
		parts[i] = p.Exprs[i].String() + " AS " + p.Names[i]
	}
	return "Project " + strings.Join(parts, ", ")
}

// AggregatePlan groups by key columns and computes aggregates. An empty
// GroupBy computes a single global row.
type AggregatePlan struct {
	In      Plan
	GroupBy []string
	Aggs    []AggSpec
}

// OutSchema is group keys followed by aggregate outputs.
func (p *AggregatePlan) OutSchema() (*columnar.Schema, error) {
	in, err := p.In.OutSchema()
	if err != nil {
		return nil, err
	}
	out := &columnar.Schema{}
	for _, g := range p.GroupBy {
		i := in.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("engine: group key %q not in input", g)
		}
		out.Fields = append(out.Fields, in.Fields[i])
	}
	for _, a := range p.Aggs {
		t := columnar.Float64
		switch a.Func {
		case AggCount:
			t = columnar.Int64
		case AggSum, AggMin, AggMax:
			if a.Arg != nil {
				at, err := a.Arg.Type(in)
				if err != nil {
					return nil, err
				}
				t = at
				if t == columnar.Bool {
					return nil, fmt.Errorf("engine: %s over boolean", a.Func)
				}
			}
		}
		out.Fields = append(out.Fields, columnar.Field{Name: a.Name, Type: t})
	}
	return out, nil
}

// Child returns the input.
func (p *AggregatePlan) Child() Plan { return p.In }

// String describes the aggregation.
func (p *AggregatePlan) String() string {
	parts := make([]string, len(p.Aggs))
	for i := range p.Aggs {
		parts[i] = p.Aggs[i].String()
	}
	s := "Aggregate " + strings.Join(parts, ", ")
	if len(p.GroupBy) > 0 {
		s += " GROUP BY " + strings.Join(p.GroupBy, ", ")
	}
	return s
}

// OrderKey is one sort key.
type OrderKey struct {
	Column string
	Desc   bool
}

// OrderByPlan sorts rows (a driver-side operation on small results).
type OrderByPlan struct {
	In   Plan
	Keys []OrderKey
}

// OutSchema passes through.
func (p *OrderByPlan) OutSchema() (*columnar.Schema, error) { return p.In.OutSchema() }

// Child returns the input.
func (p *OrderByPlan) Child() Plan { return p.In }

// String describes the sort.
func (p *OrderByPlan) String() string {
	parts := make([]string, len(p.Keys))
	for i, k := range p.Keys {
		parts[i] = k.Column
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "OrderBy " + strings.Join(parts, ", ")
}

// LimitPlan truncates to N rows.
type LimitPlan struct {
	In Plan
	N  int
}

// OutSchema passes through.
func (p *LimitPlan) OutSchema() (*columnar.Schema, error) { return p.In.OutSchema() }

// Child returns the input.
func (p *LimitPlan) Child() Plan { return p.In }

// String describes the limit.
func (p *LimitPlan) String() string { return fmt.Sprintf("Limit %d", p.N) }

// VisitScans calls fn for every ScanPlan reachable from p. Child() returns
// a join's left (probe) input, so the join's build side needs explicit
// recursion — this helper owns that invariant for every walker that must
// enumerate scans (table discovery, scan rebinding, broadcast shipping).
func VisitScans(p Plan, fn func(*ScanPlan)) {
	for n := p; n != nil; n = n.Child() {
		if s, ok := n.(*ScanPlan); ok {
			fn(s)
		}
		if j, ok := n.(*JoinPlan); ok {
			VisitScans(j.Right, fn)
		}
	}
}

// Explain renders the plan tree indented.
func Explain(p Plan) string {
	var b strings.Builder
	depth := 0
	for n := p; n != nil; n = n.Child() {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		depth++
	}
	return b.String()
}
