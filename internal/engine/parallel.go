package engine

// This file implements morsel-driven parallel execution (the engine's fifth
// concurrency level, on top of the paper's four scan levels): the chunks a
// scan source yields are treated as morsels and fanned out to N pipeline
// goroutines that run filter and projection work, and aggregation becomes
// partition-parallel — each goroutine folds its morsels into a private hash
// table (no locks on the hot path) and the tables are merged once at the
// pipeline breaker.
//
// Determinism: every morsel carries the sequence number of its position in
// the serial delivery order. Non-breaking pipelines reassemble their output
// in sequence order; the aggregate breaker orders merged groups by their
// first-seen (sequence, row) position. Both therefore produce results
// byte-identical to the serial executor, regardless of scheduling.
//
// Chunk recycling: gathered filter outputs are allocated from a per-query
// columnar.Pool and recycled at the pipeline breaker, once the morsel they
// belong to has been fully folded into the aggregation hash table (see the
// ownership contract on columnar.Pool). Pipelines without a breaker return
// their chunks as the result, so nothing is pooled there.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"lambada/internal/columnar"
)

// ParallelConfig tunes morsel-driven execution.
type ParallelConfig struct {
	// Pipelines is the number of pipeline goroutines chunks fan out to.
	// <= 0 means GOMAXPROCS; 1 degenerates to the serial executor.
	Pipelines int
}

// DefaultParallelConfig uses one pipeline goroutine per CPU.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{Pipelines: runtime.GOMAXPROCS(0)}
}

// ExecuteParallel runs the plan like Execute, but fans scan chunks out to
// cfg.Pipelines goroutines for filter/projection work and runs aggregation
// partition-parallel. The result is byte-identical to Execute's. Plan
// shapes the morsel executor does not cover (joins, nested breakers) fall
// back to the serial executor.
func ExecuteParallel(p Plan, cat Catalog, cfg ParallelConfig) (*columnar.Chunk, error) {
	if err := Resolve(p, cat); err != nil {
		return nil, err
	}
	workers := cfg.Pipelines
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Execute(p, cat)
	}
	return execParallel(p, cat, workers)
}

func execParallel(p Plan, cat Catalog, workers int) (*columnar.Chunk, error) {
	switch n := p.(type) {
	case *OrderByPlan:
		in, err := execParallel(n.In, cat, workers)
		if err != nil {
			return nil, err
		}
		return sortChunk(in, n.Keys)
	case *LimitPlan:
		in, err := execParallel(n.In, cat, workers)
		if err != nil {
			return nil, err
		}
		hi := n.N
		if hi > in.NumRows() {
			hi = in.NumRows()
		}
		return in.Slice(0, hi), nil
	case *AggregatePlan:
		if pipe, err := pipelineOf(n.In, cat); err != nil {
			return nil, err
		} else if pipe != nil {
			return parallelAggregate(n, pipe, workers)
		}
		return Execute(p, cat)
	default:
		if pipe, err := pipelineOf(p, cat); err != nil {
			return nil, err
		} else if pipe != nil {
			return parallelPipeline(p, pipe, workers)
		}
		return Execute(p, cat)
	}
}

// stage is one fused non-breaking operator of a pipeline.
type stage struct {
	filter Expr              // filter stage when non-nil
	exprs  []Expr            // projection stage when non-nil
	schema *columnar.Schema  // projection output schema (precomputed)
}

// pipeline is a streamable chain — a scan followed by filter/projection
// stages — that morsels can flow through independently.
type pipeline struct {
	src    Source
	scan   *ScanPlan
	stages []stage // in execution order (scan's pushed-down filter first)
}

// pipelineOf recognizes a chain of Filter/Project nodes over a Scan and
// compiles it into stages. It returns nil (no error) for any other shape.
func pipelineOf(p Plan, cat Catalog) (*pipeline, error) {
	var nodes []Plan
	n := p
	for {
		switch t := n.(type) {
		case *ScanPlan:
			src := cat[t.Table]
			if src == nil {
				return nil, fmt.Errorf("engine: unknown table %q", t.Table)
			}
			pipe := &pipeline{src: src, scan: t}
			if t.Filter != nil {
				pipe.stages = append(pipe.stages, stage{filter: t.Filter})
			}
			for i := len(nodes) - 1; i >= 0; i-- {
				switch op := nodes[i].(type) {
				case *FilterPlan:
					pipe.stages = append(pipe.stages, stage{filter: op.Pred})
				case *ProjectPlan:
					schema, err := op.OutSchema()
					if err != nil {
						return nil, err
					}
					pipe.stages = append(pipe.stages, stage{exprs: op.Exprs, schema: schema})
				}
			}
			return pipe, nil
		case *FilterPlan:
			nodes = append(nodes, t)
			n = t.In
		case *ProjectPlan:
			nodes = append(nodes, t)
			n = t.In
		default:
			return nil, nil
		}
	}
}

// morsel is one scan chunk tagged with its serial delivery position.
type morsel struct {
	seq uint64
	c   *columnar.Chunk
}

var errMorselCanceled = errors.New("engine: morsel pipeline canceled")

// seqError remembers the earliest-sequence failure so parallel runs report
// the same error the serial executor would have hit first.
type seqError struct {
	mu  sync.Mutex
	seq uint64
	err error
}

func (e *seqError) record(seq uint64, err error) {
	e.mu.Lock()
	if e.err == nil || seq < e.seq {
		e.seq, e.err = seq, err
	}
	e.mu.Unlock()
}

func (e *seqError) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// forEachMorsel streams the pipeline's scan through a channel and fans the
// morsels out to `workers` goroutines calling handle(workerIdx, m). The
// first error (by sequence) cancels the scan and is returned.
func forEachMorsel(pipe *pipeline, workers int, handle func(w int, m morsel) error) error {
	ch := make(chan morsel, workers)
	done := make(chan struct{})
	var cancel sync.Once
	stop := func() { cancel.Do(func() { close(done) }) }
	var firstErr seqError

	var scanErr error
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		defer close(ch)
		var seq uint64
		err := pipe.src.Scan(pipe.scan.Projection, pipe.scan.Prune, func(c *columnar.Chunk) error {
			select {
			case ch <- morsel{seq: seq, c: c}:
				seq++
				return nil
			case <-done:
				return errMorselCanceled
			}
		})
		if err != nil && err != errMorselCanceled {
			scanErr = err
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for m := range ch {
				if err := handle(w, m); err != nil {
					firstErr.record(m.seq, err)
					stop()
					// Keep draining so the channel empties and peers exit.
					for range ch {
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stop()
	scanWG.Wait()
	if err := firstErr.get(); err != nil {
		return err
	}
	return scanErr
}

// applyStages runs a morsel through the pipeline's stages, using the shared
// applyFilter kernel for filter stages. Gathered filter outputs are
// allocated from pool when non-nil (appended to *owned for the caller to
// recycle after the morsel is consumed) and plain allocations otherwise.
// sel is the worker's reusable selection-vector scratch.
func applyStages(c *columnar.Chunk, stages []stage, sel []int, pool *columnar.Pool, owned *[]*columnar.Chunk) (*columnar.Chunk, []int, error) {
	for _, st := range stages {
		if st.filter != nil {
			fc, s, pooled, err := applyFilter(c, st.filter, sel, pool)
			if err != nil {
				return nil, sel, err
			}
			c, sel = fc, s
			if pooled {
				*owned = append(*owned, fc)
			}
			continue
		}
		out := &columnar.Chunk{Schema: st.schema}
		for _, e := range st.exprs {
			v, err := e.Eval(c)
			if err != nil {
				return nil, sel, err
			}
			out.Columns = append(out.Columns, v)
		}
		c = out
	}
	return c, sel, nil
}

// parallelAggregate runs a partition-parallel aggregation: each pipeline
// goroutine builds per-morsel hash tables (single-int64-key fast path
// inside), and the pipeline breaker folds the partial tables into a master
// table in morsel-sequence order — the same reduction tree as the serial
// executor, so float sums combine in the same order and the result is
// byte-identical; first-seen (sequence, row) ordering of the merged groups
// reproduces the serial output order.
func parallelAggregate(p *AggregatePlan, pipe *pipeline, workers int) (*columnar.Chunk, error) {
	inSchema, err := p.In.OutSchema()
	if err != nil {
		return nil, err
	}
	outSchema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	type partial struct {
		seq uint64
		b   *aggBuilder
	}
	pool := columnar.NewPool()
	sels := make([][]int, workers)
	owneds := make([][]*columnar.Chunk, workers)
	partials := make([][]partial, workers)

	err = forEachMorsel(pipe, workers, func(w int, m morsel) error {
		owned := owneds[w][:0]
		out, sel, err := applyStages(m.c, pipe.stages, sels[w], pool, &owned)
		sels[w] = sel
		owneds[w] = owned
		if err != nil {
			return err
		}
		b, err := newAggBuilder(p, inSchema)
		if err != nil {
			return err
		}
		if err := b.addChunk(out, m.seq); err != nil {
			return err
		}
		partials[w] = append(partials[w], partial{seq: m.seq, b: b})
		// The morsel is folded into its hash table: the pipeline breaker is
		// the recycle point for every pool chunk this morsel produced.
		for _, c := range owned {
			pool.PutChunk(c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []partial
	for _, ps := range partials {
		all = append(all, ps...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	master, err := newAggBuilder(p, inSchema)
	if err != nil {
		return nil, err
	}
	for _, pt := range all {
		master.mergeFrom(pt.b)
	}
	return master.finalize(outSchema)
}

// parallelPipeline runs a breaker-less pipeline (scan + filters +
// projections) and materializes the result in sequence order, byte-identical
// to the serial executor.
func parallelPipeline(p Plan, pipe *pipeline, workers int) (*columnar.Chunk, error) {
	schema, err := p.OutSchema()
	if err != nil {
		return nil, err
	}
	results := make([][]morsel, workers)
	sels := make([][]int, workers)

	err = forEachMorsel(pipe, workers, func(w int, m morsel) error {
		out, sel, err := applyStages(m.c, pipe.stages, sels[w], nil, nil)
		sels[w] = sel
		if err != nil {
			return err
		}
		results[w] = append(results[w], morsel{seq: m.seq, c: out})
		return nil
	})
	if err != nil {
		return nil, err
	}

	var all []morsel
	for _, rs := range results {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	out := columnar.NewChunk(schema, 0)
	for _, m := range all {
		out.AppendChunk(m.c)
	}
	return out, nil
}
