package engine

import (
	"runtime"

	"lambada/internal/columnar"
)

// ParallelConfig tunes the pipeline-graph scheduler.
type ParallelConfig struct {
	// Pipelines is the number of pipeline goroutines morsels fan out to in
	// every pipeline of the graph. <= 0 means GOMAXPROCS; 1 runs the whole
	// graph inline on the caller's goroutine (no goroutines spawned).
	Pipelines int
}

// DefaultParallelConfig uses one pipeline goroutine per CPU.
func DefaultParallelConfig() ParallelConfig {
	return ParallelConfig{Pipelines: runtime.GOMAXPROCS(0)}
}

// ExecuteParallel runs the plan on the pipeline-graph scheduler at
// cfg.Pipelines morsel workers per pipeline. Every plan shape runs here —
// joins, nested breakers, arbitrary operator chains; there is no serial
// fallback path. Results are byte-identical to Execute (= parallelism 1):
// collect sinks reassemble morsels in sequence order, aggregation folds
// per-morsel partials in sequence order, and join probes emit matches in
// (probe row, build row) order against a sealed build table.
func ExecuteParallel(p Plan, cat Catalog, cfg ParallelConfig) (*columnar.Chunk, error) {
	if err := Resolve(p, cat); err != nil {
		return nil, err
	}
	workers := cfg.Pipelines
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g, root, err := compileGraph(p, cat)
	if err != nil {
		return nil, err
	}
	return g.run(root, workers)
}
