package engine

import (
	"encoding/json"
	"fmt"
	"math"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Plans and expressions are serialized as tagged JSON unions so the driver
// can ship worker plan fragments inside invocation payloads (§3.3: "this
// event handler extracts the ID of the worker, the query plan fragment, and
// its input from the invocation parameters").

type exprJSON struct {
	Kind  string    `json:"kind"`
	Name  string    `json:"name,omitempty"`  // col
	Int   int64     `json:"int,omitempty"`   // const int
	Float float64   `json:"float,omitempty"` // const float
	Op    uint8     `json:"op,omitempty"`    // bin
	L     *exprJSON `json:"l,omitempty"`
	R     *exprJSON `json:"r,omitempty"`
	E     *exprJSON `json:"e,omitempty"` // not
}

func encodeExpr(e Expr) (*exprJSON, error) {
	switch v := e.(type) {
	case nil:
		return nil, nil
	case Col:
		return &exprJSON{Kind: "col", Name: string(v)}, nil
	case ConstInt:
		return &exprJSON{Kind: "int", Int: int64(v)}, nil
	case ConstFloat:
		return &exprJSON{Kind: "float", Float: float64(v)}, nil
	case *Bin:
		l, err := encodeExpr(v.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeExpr(v.R)
		if err != nil {
			return nil, err
		}
		return &exprJSON{Kind: "bin", Op: uint8(v.Op), L: l, R: r}, nil
	case *Not:
		inner, err := encodeExpr(v.E)
		if err != nil {
			return nil, err
		}
		return &exprJSON{Kind: "not", E: inner}, nil
	default:
		return nil, fmt.Errorf("engine: cannot serialize expression %T", e)
	}
}

func decodeExpr(j *exprJSON) (Expr, error) {
	if j == nil {
		return nil, nil
	}
	switch j.Kind {
	case "col":
		return Col(j.Name), nil
	case "int":
		return ConstInt(j.Int), nil
	case "float":
		return ConstFloat(j.Float), nil
	case "bin":
		l, err := decodeExpr(j.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeExpr(j.R)
		if err != nil {
			return nil, err
		}
		if j.Op > uint8(OpOr) {
			return nil, fmt.Errorf("engine: bad operator %d", j.Op)
		}
		return NewBin(BinOp(j.Op), l, r), nil
	case "not":
		inner, err := decodeExpr(j.E)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	default:
		return nil, fmt.Errorf("engine: unknown expression kind %q", j.Kind)
	}
}

type fieldJSON struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

type aggJSON struct {
	Func uint8     `json:"func"`
	Arg  *exprJSON `json:"arg,omitempty"`
	Name string    `json:"name"`
}

type predJSON struct {
	Column string  `json:"column"`
	Min    float64 `json:"min,omitempty"`
	Max    float64 `json:"max,omitempty"`
	// JSON cannot carry ±Inf; open bounds are flagged instead.
	NoMin bool `json:"noMin,omitempty"`
	NoMax bool `json:"noMax,omitempty"`
}

type planJSON struct {
	Kind string `json:"kind"`

	// scan
	Table      string      `json:"table,omitempty"`
	Projection []string    `json:"projection,omitempty"`
	Filter     *exprJSON   `json:"filter,omitempty"`
	Prune      []predJSON  `json:"prune,omitempty"`
	Schema     []fieldJSON `json:"schema,omitempty"`

	// filter / project / agg / orderby / limit
	In      *planJSON   `json:"in,omitempty"`
	Pred    *exprJSON   `json:"pred,omitempty"`
	Exprs   []*exprJSON `json:"exprs,omitempty"`
	Names   []string    `json:"names,omitempty"`
	GroupBy []string    `json:"groupBy,omitempty"`
	Aggs    []aggJSON   `json:"aggs,omitempty"`
	Keys    []OrderKey  `json:"keys,omitempty"`
	N       int         `json:"n,omitempty"`

	// join; single keys travel as leftKey/rightKey, multi-column keys as
	// leftKeys/rightKeys (the pipeline compiler normalizes either form).
	Right     *planJSON `json:"right,omitempty"`
	LeftKey   string    `json:"leftKey,omitempty"`
	RightKey  string    `json:"rightKey,omitempty"`
	LeftKeys  []string  `json:"leftKeys,omitempty"`
	RightKeys []string  `json:"rightKeys,omitempty"`
}

func encodeSchema(s *columnar.Schema) []fieldJSON {
	if s == nil {
		return nil
	}
	out := make([]fieldJSON, s.Len())
	for i, f := range s.Fields {
		out[i] = fieldJSON{Name: f.Name, Type: uint8(f.Type)}
	}
	return out
}

func decodeSchema(fs []fieldJSON) *columnar.Schema {
	if fs == nil {
		return nil
	}
	s := &columnar.Schema{}
	for _, f := range fs {
		s.Fields = append(s.Fields, columnar.Field{Name: f.Name, Type: columnar.Type(f.Type)})
	}
	return s
}

func encodePlanNode(p Plan) (*planJSON, error) {
	switch n := p.(type) {
	case *ScanPlan:
		out := &planJSON{
			Kind:       "scan",
			Table:      n.Table,
			Projection: n.Projection,
			Schema:     encodeSchema(n.TableSchema),
		}
		f, err := encodeExpr(n.Filter)
		if err != nil {
			return nil, err
		}
		out.Filter = f
		for _, pr := range n.Prune {
			pj := predJSON{Column: pr.Column, Min: pr.Min, Max: pr.Max}
			if pr.Min < -1e308 {
				pj.NoMin, pj.Min = true, 0
			}
			if pr.Max > 1e308 {
				pj.NoMax, pj.Max = true, 0
			}
			out.Prune = append(out.Prune, pj)
		}
		return out, nil
	case *FilterPlan:
		in, err := encodePlanNode(n.In)
		if err != nil {
			return nil, err
		}
		pred, err := encodeExpr(n.Pred)
		if err != nil {
			return nil, err
		}
		return &planJSON{Kind: "filter", In: in, Pred: pred}, nil
	case *ProjectPlan:
		in, err := encodePlanNode(n.In)
		if err != nil {
			return nil, err
		}
		out := &planJSON{Kind: "project", In: in, Names: n.Names}
		for _, e := range n.Exprs {
			ej, err := encodeExpr(e)
			if err != nil {
				return nil, err
			}
			out.Exprs = append(out.Exprs, ej)
		}
		return out, nil
	case *AggregatePlan:
		in, err := encodePlanNode(n.In)
		if err != nil {
			return nil, err
		}
		out := &planJSON{Kind: "agg", In: in, GroupBy: n.GroupBy}
		for _, a := range n.Aggs {
			aj := aggJSON{Func: uint8(a.Func), Name: a.Name}
			if a.Arg != nil {
				e, err := encodeExpr(a.Arg)
				if err != nil {
					return nil, err
				}
				aj.Arg = e
			}
			out.Aggs = append(out.Aggs, aj)
		}
		return out, nil
	case *OrderByPlan:
		in, err := encodePlanNode(n.In)
		if err != nil {
			return nil, err
		}
		return &planJSON{Kind: "orderby", In: in, Keys: n.Keys}, nil
	case *LimitPlan:
		in, err := encodePlanNode(n.In)
		if err != nil {
			return nil, err
		}
		return &planJSON{Kind: "limit", In: in, N: n.N}, nil
	case *JoinPlan:
		left, err := encodePlanNode(n.Left)
		if err != nil {
			return nil, err
		}
		right, err := encodePlanNode(n.Right)
		if err != nil {
			return nil, err
		}
		return &planJSON{
			Kind: "join", In: left, Right: right,
			LeftKey: n.LeftKey, RightKey: n.RightKey,
			LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
		}, nil
	default:
		return nil, fmt.Errorf("engine: cannot serialize plan node %T", p)
	}
}

func decodePlanNode(j *planJSON) (Plan, error) {
	if j == nil {
		return nil, fmt.Errorf("engine: nil plan")
	}
	switch j.Kind {
	case "scan":
		out := &ScanPlan{
			Table:       j.Table,
			Projection:  j.Projection,
			TableSchema: decodeSchema(j.Schema),
		}
		f, err := decodeExpr(j.Filter)
		if err != nil {
			return nil, err
		}
		out.Filter = f
		for _, pj := range j.Prune {
			pr := lpq.Predicate{Column: pj.Column, Min: pj.Min, Max: pj.Max}
			if pj.NoMin {
				pr.Min = negInf
			}
			if pj.NoMax {
				pr.Max = posInf
			}
			out.Prune = append(out.Prune, pr)
		}
		return out, nil
	case "filter":
		in, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		pred, err := decodeExpr(j.Pred)
		if err != nil {
			return nil, err
		}
		return &FilterPlan{In: in, Pred: pred}, nil
	case "project":
		in, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		out := &ProjectPlan{In: in, Names: j.Names}
		for _, ej := range j.Exprs {
			e, err := decodeExpr(ej)
			if err != nil {
				return nil, err
			}
			out.Exprs = append(out.Exprs, e)
		}
		return out, nil
	case "agg":
		in, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		out := &AggregatePlan{In: in, GroupBy: j.GroupBy}
		for _, aj := range j.Aggs {
			a := AggSpec{Func: AggFunc(aj.Func), Name: aj.Name}
			if aj.Arg != nil {
				e, err := decodeExpr(aj.Arg)
				if err != nil {
					return nil, err
				}
				a.Arg = e
			}
			out.Aggs = append(out.Aggs, a)
		}
		return out, nil
	case "orderby":
		in, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		return &OrderByPlan{In: in, Keys: j.Keys}, nil
	case "limit":
		in, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		return &LimitPlan{In: in, N: j.N}, nil
	case "join":
		left, err := decodePlanNode(j.In)
		if err != nil {
			return nil, err
		}
		right, err := decodePlanNode(j.Right)
		if err != nil {
			return nil, err
		}
		return &JoinPlan{
			Left: left, Right: right,
			LeftKey: j.LeftKey, RightKey: j.RightKey,
			LeftKeys: j.LeftKeys, RightKeys: j.RightKeys,
		}, nil
	default:
		return nil, fmt.Errorf("engine: unknown plan kind %q", j.Kind)
	}
}

var (
	posInf = math.Inf(1)
	negInf = math.Inf(-1)
)

// MarshalPlan serializes a plan to JSON.
func MarshalPlan(p Plan) ([]byte, error) {
	j, err := encodePlanNode(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(j)
}

// UnmarshalPlan reconstructs a plan from MarshalPlan output.
func UnmarshalPlan(data []byte) (Plan, error) {
	var j planJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	return decodePlanNode(&j)
}
