package engine

import (
	"fmt"
	"math"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// Optimize applies the common optimization set of §3.2 to a resolved plan:
// selection push-down into scans (including extraction of min/max-prunable
// predicates) and projection push-down.
func Optimize(p Plan, cat Catalog) (Plan, error) {
	if err := Resolve(p, cat); err != nil {
		return nil, err
	}
	p = pushDownFilters(p)
	if err := pushDownProjections(p); err != nil {
		return nil, err
	}
	return p, nil
}

// pushDownFilters moves filter predicates adjacent to scans into the scan
// node and derives prune predicates. Filters sitting above a join are split
// into conjuncts and pushed to whichever side covers their columns (WHERE
// after INNER JOIN filters before the join, restoring scan filtering and
// row-group pruning on the probe side).
func pushDownFilters(p Plan) Plan {
	switch n := p.(type) {
	case *FilterPlan:
		child := pushDownFilters(n.In)
		if scan, ok := child.(*ScanPlan); ok {
			scan.Filter = And(scan.Filter, n.Pred)
			scan.Prune = append(scan.Prune, ExtractPrunePredicates(n.Pred, scan.TableSchema)...)
			return scan
		}
		if j, ok := child.(*JoinPlan); ok {
			if rest := pushThroughJoin(j, n.Pred); rest == nil {
				return j
			} else {
				n.Pred = rest
			}
		}
		n.In = child
		return n
	case *ProjectPlan:
		n.In = pushDownFilters(n.In)
		return n
	case *AggregatePlan:
		n.In = pushDownFilters(n.In)
		return n
	case *OrderByPlan:
		n.In = pushDownFilters(n.In)
		return n
	case *LimitPlan:
		n.In = pushDownFilters(n.In)
		return n
	case *JoinPlan:
		n.Left = pushDownFilters(n.Left)
		n.Right = pushDownFilters(n.Right)
		return n
	default:
		return p
	}
}

// pushThroughJoin pushes the conjuncts of pred whose columns one join side
// fully covers below the join (filtering before probing is semantics-
// preserving for an inner join and keeps row order), re-running the scan
// push-down on each side. It returns the conjunction of what could not be
// pushed (nil if everything moved).
func pushThroughJoin(j *JoinPlan, pred Expr) (rest Expr) {
	ls, lerr := j.Left.OutSchema()
	rs, rerr := j.Right.OutSchema()
	if lerr != nil || rerr != nil {
		return pred
	}
	covered := func(s *columnar.Schema, cols []string) bool {
		for _, c := range cols {
			if s.Index(c) < 0 {
				return false
			}
		}
		return true
	}
	var left, right Expr
	for _, c := range SplitConjuncts(pred) {
		cols := c.Columns(nil)
		switch {
		case covered(ls, cols):
			left = And(left, c)
		case covered(rs, cols):
			right = And(right, c)
		default:
			rest = And(rest, c)
		}
	}
	if left != nil {
		j.Left = pushDownFilters(&FilterPlan{In: j.Left, Pred: left})
	}
	if right != nil {
		j.Right = pushDownFilters(&FilterPlan{In: j.Right, Pred: right})
	}
	return rest
}

// ExtractPrunePredicates turns conjuncts of the form (col cmp const) into
// min/max range predicates testable against row-group statistics.
func ExtractPrunePredicates(pred Expr, schema *columnar.Schema) []lpq.Predicate {
	var out []lpq.Predicate
	for _, e := range SplitConjuncts(pred) {
		b, ok := e.(*Bin)
		if !ok || !b.Op.IsComparison() {
			continue
		}
		col, cok := b.L.(Col)
		val, iv, isInt, vok := constValue(b.R)
		op := b.Op
		if !cok || !vok {
			// Try the mirrored form (const cmp col).
			col, cok = b.R.(Col)
			val, iv, isInt, vok = constValue(b.L)
			if !cok || !vok {
				continue
			}
			op = mirror(op)
		}
		if schema != nil && schema.Index(string(col)) < 0 {
			continue
		}
		p := lpq.Predicate{Column: string(col), Min: math.Inf(-1), Max: math.Inf(1)}
		if isInt {
			// Carry the exact integer bounds: Int64 columns prune via these
			// (the float mirror is lossy above 2^53). Admits falls back to
			// the float interval for non-Int64 columns.
			p.HasInt = true
			p.MinInt, p.MaxInt = math.MinInt64, math.MaxInt64
		}
		switch op {
		case OpEQ:
			p.Min, p.Max = val, val
			p.MinInt, p.MaxInt = iv, iv
		case OpLT, OpLE:
			p.Max = val
			p.MaxInt = iv
			if op == OpLT && iv > math.MinInt64 {
				// col < iv over integers means col <= iv-1.
				p.MaxInt = iv - 1
			}
		case OpGT, OpGE:
			p.Min = val
			p.MinInt = iv
			if op == OpGT && iv < math.MaxInt64 {
				p.MinInt = iv + 1
			}
		default: // OpNE prunes nothing
			continue
		}
		out = append(out, p)
	}
	return out
}

func constValue(e Expr) (f float64, iv int64, isInt bool, ok bool) {
	switch v := e.(type) {
	case ConstInt:
		return float64(v), int64(v), true, true
	case ConstFloat:
		return float64(v), 0, false, true
	default:
		return 0, 0, false, false
	}
}

func mirror(op BinOp) BinOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op
	}
}

// pushDownProjections computes the columns each scan actually needs and
// restricts the scan projection accordingly. "Needs everything" is tracked
// per scan, not globally: a join's broadcast side staying whole must not
// disable projection push-down on the probe-side scan.
func pushDownProjections(p Plan) error {
	needed, needsAll := requiredColumns(p)
	var apply func(Plan)
	apply = func(n Plan) {
		for ; n != nil; n = n.Child() {
			if j, ok := n.(*JoinPlan); ok {
				apply(j.Right)
			}
			if scan, ok := n.(*ScanPlan); ok && scan.Projection == nil && !needsAll[scan] {
				// Preserve schema order for readability.
				var cols []string
				for _, f := range scan.TableSchema.Fields {
					if needed[f.Name] {
						cols = append(cols, f.Name)
					}
				}
				scan.Projection = cols
			}
		}
	}
	apply(p)
	return nil
}

// requiredColumns walks the plan and collects every referenced column name,
// plus the set of scans some consumer needs whole (e.g. a bare scan
// result, or a join's broadcast side).
func requiredColumns(p Plan) (map[string]bool, map[*ScanPlan]bool) {
	needed := map[string]bool{}
	needsAll := map[*ScanPlan]bool{}
	var walk func(Plan, bool)
	walk = func(n Plan, parentNeedsAll bool) {
		switch t := n.(type) {
		case *ScanPlan:
			if t.Filter != nil {
				for _, c := range t.Filter.Columns(nil) {
					needed[c] = true
				}
			}
			if parentNeedsAll && t.Projection == nil {
				needsAll[t] = true
			}
		case *FilterPlan:
			for _, c := range t.Pred.Columns(nil) {
				needed[c] = true
			}
			walk(t.In, parentNeedsAll)
		case *ProjectPlan:
			for _, e := range t.Exprs {
				for _, c := range e.Columns(nil) {
					needed[c] = true
				}
			}
			walk(t.In, false)
		case *AggregatePlan:
			for _, g := range t.GroupBy {
				needed[g] = true
			}
			for _, a := range t.Aggs {
				if a.Arg != nil {
					for _, c := range a.Arg.Columns(nil) {
						needed[c] = true
					}
				}
			}
			walk(t.In, false)
		case *OrderByPlan:
			for _, k := range t.Keys {
				needed[k.Column] = true
			}
			walk(t.In, parentNeedsAll)
		case *LimitPlan:
			walk(t.In, parentNeedsAll)
		case *JoinPlan:
			lk, rk := t.keyNames()
			for _, k := range lk {
				needed[k] = true
			}
			for _, k := range rk {
				needed[k] = true
			}
			walk(t.Left, parentNeedsAll)
			// The build side inherits the parent's needs: when the query
			// names its output columns (projection or aggregation above),
			// the build-side scan prunes like any other — essential for
			// shuffle joins, whose build side is a large scan. Only a bare
			// join result keeps both sides whole, so its columns survive
			// into the join output.
			walk(t.Right, parentNeedsAll)
		}
	}
	walk(p, true)
	return needed, needsAll
}

// DistributedPlan is the result of splitting a plan into a worker scope and
// a driver scope (§3.2: "a query plan is divided into scopes, each of which
// may run on a different target platform").
type DistributedPlan struct {
	// Worker runs on every serverless worker against its file subset.
	Worker Plan
	// Driver merges the materialized worker results; its catalog must bind
	// WorkerResultTable to the concatenated worker outputs.
	Driver Plan
}

// WorkerResultTable is the driver-scope table name bound to collected
// worker results.
const WorkerResultTable = "__worker_results"

// SplitDistributed converts an optimized single-node plan into a
// distributed one. Supported shapes: Scan[-Filter][-Project][-Aggregate]
// [-OrderBy][-Limit]. Aggregations split into worker partials and a driver
// final merge; plans without aggregation concatenate worker outputs on the
// driver.
func SplitDistributed(p Plan) (*DistributedPlan, error) {
	// Peel driver-only tail (OrderBy, Limit).
	var tail []Plan
	cur := p
	for {
		switch n := cur.(type) {
		case *OrderByPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		case *LimitPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		}
		break
	}

	var worker Plan
	var driver Plan
	switch n := cur.(type) {
	case *AggregatePlan:
		partial, final, err := SplitAggregate(n)
		if err != nil {
			return nil, err
		}
		worker = partial
		driver = final
	case *ProjectPlan:
		// The SQL frontend emits Project(Aggregate(...)); the projection
		// belongs to the driver scope, on top of the final merge.
		if agg, ok := n.In.(*AggregatePlan); ok {
			partial, final, err := SplitAggregate(agg)
			if err != nil {
				return nil, err
			}
			worker = partial
			driver = &ProjectPlan{In: final, Exprs: n.Exprs, Names: n.Names}
			break
		}
		worker = cur
		ws, err := cur.OutSchema()
		if err != nil {
			return nil, err
		}
		driver = &ScanPlan{Table: WorkerResultTable, TableSchema: ws}
	case *ScanPlan, *FilterPlan, *JoinPlan:
		worker = cur
		ws, err := cur.OutSchema()
		if err != nil {
			return nil, err
		}
		driver = &ScanPlan{Table: WorkerResultTable, TableSchema: ws}
	default:
		return nil, fmt.Errorf("engine: cannot distribute plan node %T", cur)
	}

	// Re-attach the driver-only tail (in original order).
	for i := len(tail) - 1; i >= 0; i-- {
		switch t := tail[i].(type) {
		case *OrderByPlan:
			driver = &OrderByPlan{In: driver, Keys: t.Keys}
		case *LimitPlan:
			driver = &LimitPlan{In: driver, N: t.N}
		}
	}
	return &DistributedPlan{Worker: worker, Driver: driver}, nil
}

// SplitAggregate decomposes an aggregation into a worker partial and a
// driver final merge. AVG becomes SUM+COUNT partials recombined by a final
// projection; SUM/COUNT/MIN/MAX merge with SUM/SUM/MIN/MAX.
func SplitAggregate(p *AggregatePlan) (partial *AggregatePlan, final Plan, err error) {
	partial = &AggregatePlan{In: p.In, GroupBy: p.GroupBy}
	mergeAggs := []AggSpec{}
	// Final projection reconstructing the requested outputs.
	var exprs []Expr
	var names []string
	for _, g := range p.GroupBy {
		exprs = append(exprs, Col(g))
		names = append(names, g)
	}
	for i, a := range p.Aggs {
		switch a.Func {
		case AggSum:
			name := partialName(a.Name, i, "sum")
			partial.Aggs = append(partial.Aggs, AggSpec{Func: AggSum, Arg: a.Arg, Name: name})
			mergeAggs = append(mergeAggs, AggSpec{Func: AggSum, Arg: Col(name), Name: name})
			exprs = append(exprs, Col(name))
		case AggCount:
			name := partialName(a.Name, i, "cnt")
			partial.Aggs = append(partial.Aggs, AggSpec{Func: AggCount, Arg: nil, Name: name})
			mergeAggs = append(mergeAggs, AggSpec{Func: AggSum, Arg: Col(name), Name: name})
			exprs = append(exprs, Col(name))
		case AggAvg:
			sname := partialName(a.Name, i, "sum")
			cname := partialName(a.Name, i, "cnt")
			partial.Aggs = append(partial.Aggs,
				AggSpec{Func: AggSum, Arg: a.Arg, Name: sname},
				AggSpec{Func: AggCount, Arg: nil, Name: cname},
			)
			mergeAggs = append(mergeAggs,
				AggSpec{Func: AggSum, Arg: Col(sname), Name: sname},
				AggSpec{Func: AggSum, Arg: Col(cname), Name: cname},
			)
			exprs = append(exprs, NewBin(OpDiv, Col(sname), Col(cname)))
		case AggMin:
			name := partialName(a.Name, i, "min")
			partial.Aggs = append(partial.Aggs, AggSpec{Func: AggMin, Arg: a.Arg, Name: name})
			mergeAggs = append(mergeAggs, AggSpec{Func: AggMin, Arg: Col(name), Name: name})
			exprs = append(exprs, Col(name))
		case AggMax:
			name := partialName(a.Name, i, "max")
			partial.Aggs = append(partial.Aggs, AggSpec{Func: AggMax, Arg: a.Arg, Name: name})
			mergeAggs = append(mergeAggs, AggSpec{Func: AggMax, Arg: Col(name), Name: name})
			exprs = append(exprs, Col(name))
		default:
			return nil, nil, fmt.Errorf("engine: cannot split aggregate %v", a.Func)
		}
		names = append(names, a.Name)
	}
	ws, err := partial.OutSchema()
	if err != nil {
		return nil, nil, err
	}
	merge := &AggregatePlan{
		In:      &ScanPlan{Table: WorkerResultTable, TableSchema: ws},
		GroupBy: p.GroupBy,
		Aggs:    mergeAggs,
	}
	final = &ProjectPlan{In: merge, Exprs: exprs, Names: names}
	return partial, final, nil
}

func partialName(name string, i int, kind string) string {
	return fmt.Sprintf("__p%d_%s_%s", i, kind, name)
}

// ExchangedPlan is a distributed plan whose aggregation merges through the
// serverless exchange operator instead of the driver: workers compute
// partial aggregates, shuffle them by group key so each group lands on
// exactly one worker, finalize locally, and the driver only concatenates
// (plus any ORDER BY / LIMIT tail). This is the scalable path for
// high-cardinality GROUP BY, where a driver-side merge would not fit.
type ExchangedPlan struct {
	// Worker computes per-file partial aggregates.
	Worker Plan
	// WorkerFinal merges the exchanged partials on each worker; its scan
	// of WorkerResultTable is bound to the worker's post-shuffle chunk.
	WorkerFinal Plan
	// Driver concatenates worker outputs and applies the tail; its scan of
	// WorkerResultTable is bound to the collected worker results.
	Driver Plan
	// Key is the partition column (the first group key, present in the
	// partial output schema).
	Key string
}

// SplitExchanged converts an optimized plan with a grouped aggregation into
// an exchange-merged distributed plan. Plans without GROUP BY (global
// aggregates) do not need an exchange; use SplitDistributed.
func SplitExchanged(p Plan) (*ExchangedPlan, error) {
	var tail []Plan
	cur := p
	for {
		switch n := cur.(type) {
		case *OrderByPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		case *LimitPlan:
			tail = append(tail, n)
			cur = n.In
			continue
		}
		break
	}
	var agg *AggregatePlan
	var topProject *ProjectPlan
	switch n := cur.(type) {
	case *AggregatePlan:
		agg = n
	case *ProjectPlan:
		inner, ok := n.In.(*AggregatePlan)
		if !ok {
			return nil, fmt.Errorf("engine: exchange split needs an aggregation, got %T under project", n.In)
		}
		agg = inner
		topProject = n
	default:
		return nil, fmt.Errorf("engine: exchange split needs an aggregation, got %T", cur)
	}
	if len(agg.GroupBy) == 0 {
		return nil, fmt.Errorf("engine: exchange split needs GROUP BY (use SplitDistributed for global aggregates)")
	}
	partial, final, err := SplitAggregate(agg)
	if err != nil {
		return nil, err
	}
	workerFinal := final
	if topProject != nil {
		workerFinal = &ProjectPlan{In: final, Exprs: topProject.Exprs, Names: topProject.Names}
	}
	outSchema, err := workerFinal.OutSchema()
	if err != nil {
		return nil, err
	}
	var driver Plan = &ScanPlan{Table: WorkerResultTable, TableSchema: outSchema}
	for i := len(tail) - 1; i >= 0; i-- {
		switch t := tail[i].(type) {
		case *OrderByPlan:
			driver = &OrderByPlan{In: driver, Keys: t.Keys}
		case *LimitPlan:
			driver = &LimitPlan{In: driver, N: t.N}
		}
	}
	return &ExchangedPlan{
		Worker:      partial,
		WorkerFinal: workerFinal,
		Driver:      driver,
		Key:         agg.GroupBy[0],
	}, nil
}
