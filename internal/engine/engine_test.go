package engine

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func liSource(t *testing.T, sf float64) (*MemSource, *columnar.Chunk) {
	t.Helper()
	c := tpch.Gen{SF: sf, Seed: 11}.Generate()
	return NewMemSource(tpch.Schema(), c), c
}

// q1Plan builds TPC-H Query 1 in plan IR.
func q1Plan() Plan {
	return &OrderByPlan{
		Keys: []OrderKey{{Column: "l_returnflag"}, {Column: "l_linestatus"}},
		In: &AggregatePlan{
			GroupBy: []string{"l_returnflag", "l_linestatus"},
			Aggs: []AggSpec{
				{Func: AggSum, Arg: Col("l_quantity"), Name: "sum_qty"},
				{Func: AggSum, Arg: Col("l_extendedprice"), Name: "sum_base_price"},
				{Func: AggSum, Arg: NewBin(OpMul, Col("l_extendedprice"), NewBin(OpSub, ConstFloat(1), Col("l_discount"))), Name: "sum_disc_price"},
				{Func: AggSum, Arg: NewBin(OpMul, NewBin(OpMul, Col("l_extendedprice"), NewBin(OpSub, ConstFloat(1), Col("l_discount"))), NewBin(OpAdd, ConstFloat(1), Col("l_tax"))), Name: "sum_charge"},
				{Func: AggAvg, Arg: Col("l_quantity"), Name: "avg_qty"},
				{Func: AggAvg, Arg: Col("l_extendedprice"), Name: "avg_price"},
				{Func: AggAvg, Arg: Col("l_discount"), Name: "avg_disc"},
				{Func: AggCount, Name: "count_order"},
			},
			In: &FilterPlan{
				Pred: NewBin(OpLE, Col("l_shipdate"), ConstInt(tpch.Q1ShipDateCutoff)),
				In:   &ScanPlan{Table: "lineitem"},
			},
		},
	}
}

// q6Plan builds TPC-H Query 6 in plan IR.
func q6Plan() Plan {
	pred := And(
		NewBin(OpGE, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateLo)),
		NewBin(OpLT, Col("l_shipdate"), ConstInt(tpch.Q6ShipDateHi)),
		Between(Col("l_discount"), ConstFloat(0.0499999), ConstFloat(0.0700001)),
		NewBin(OpLT, Col("l_quantity"), ConstFloat(24)),
	)
	return &AggregatePlan{
		Aggs: []AggSpec{{Func: AggSum, Arg: NewBin(OpMul, Col("l_extendedprice"), Col("l_discount")), Name: "revenue"}},
		In:   &FilterPlan{Pred: pred, In: &ScanPlan{Table: "lineitem"}},
	}
}

func TestExprEvalAndTypes(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "i", Type: columnar.Int64},
		columnar.Field{Name: "f", Type: columnar.Float64},
		columnar.Field{Name: "b", Type: columnar.Bool},
	)
	c := columnar.NewChunk(schema, 3)
	for i := 0; i < 3; i++ {
		c.Columns[0].AppendInt64(int64(i + 1))
		c.Columns[1].AppendFloat64(float64(i) * 1.5)
		c.Columns[2].AppendBool(i%2 == 0)
	}

	sum := NewBin(OpAdd, Col("i"), Col("i"))
	if tp, _ := sum.Type(schema); tp != columnar.Int64 {
		t.Errorf("int+int type = %v", tp)
	}
	v, err := sum.Eval(c)
	if err != nil || !reflect.DeepEqual(v.Int64s, []int64{2, 4, 6}) {
		t.Errorf("int+int = %v, %v", v, err)
	}

	mixed := NewBin(OpMul, Col("i"), Col("f"))
	if tp, _ := mixed.Type(schema); tp != columnar.Float64 {
		t.Errorf("int*float type = %v", tp)
	}
	v, _ = mixed.Eval(c)
	if !reflect.DeepEqual(v.Float64s, []float64{0, 3, 9}) {
		t.Errorf("int*float = %v", v.Float64s)
	}

	div := NewBin(OpDiv, Col("i"), Col("i"))
	if tp, _ := div.Type(schema); tp != columnar.Float64 {
		t.Errorf("div type = %v (division always yields float)", tp)
	}

	cmp := NewBin(OpGE, Col("i"), ConstInt(2))
	v, _ = cmp.Eval(c)
	if !reflect.DeepEqual(v.Bools, []bool{false, true, true}) {
		t.Errorf("cmp = %v", v.Bools)
	}

	logic := NewBin(OpAnd, cmp, Col("b"))
	v, _ = logic.Eval(c)
	if !reflect.DeepEqual(v.Bools, []bool{false, false, true}) {
		t.Errorf("and = %v", v.Bools)
	}

	not := &Not{E: Col("b")}
	v, _ = not.Eval(c)
	if !reflect.DeepEqual(v.Bools, []bool{false, true, false}) {
		t.Errorf("not = %v", v.Bools)
	}

	// Type errors.
	if _, err := NewBin(OpAdd, Col("b"), Col("i")).Type(schema); err == nil {
		t.Error("bool arithmetic accepted")
	}
	if _, err := NewBin(OpAnd, Col("i"), Col("b")).Type(schema); err == nil {
		t.Error("AND on int accepted")
	}
	if _, err := Col("zzz").Type(schema); err == nil {
		t.Error("unknown column accepted")
	}

	// Column collection.
	cols := logic.Columns(nil)
	if len(cols) != 2 || cols[0] != "i" || cols[1] != "b" {
		t.Errorf("columns = %v", cols)
	}
}

func TestExecuteScanFilterProject(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 10)
	for i := int64(0); i < 10; i++ {
		c.Columns[0].AppendInt64(i)
	}
	cat := Catalog{"t": NewMemSource(schema, c)}
	plan := &ProjectPlan{
		Exprs: []Expr{NewBin(OpMul, Col("x"), ConstInt(2))},
		Names: []string{"y"},
		In:    &FilterPlan{Pred: NewBin(OpGE, Col("x"), ConstInt(7)), In: &ScanPlan{Table: "t"}},
	}
	out, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Columns[0].Int64s, []int64{14, 16, 18}) {
		t.Errorf("result = %v", out.Columns[0].Int64s)
	}
	if out.Schema.Fields[0].Name != "y" {
		t.Errorf("schema = %v", out.Schema)
	}
}

func TestExecuteLimitAndOrder(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	c := columnar.NewChunk(schema, 5)
	for _, v := range []int64{3, 1, 4, 1, 5} {
		c.Columns[0].AppendInt64(v)
	}
	cat := Catalog{"t": NewMemSource(schema, c)}
	plan := &LimitPlan{N: 3, In: &OrderByPlan{Keys: []OrderKey{{Column: "x", Desc: true}}, In: &ScanPlan{Table: "t"}}}
	out, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Columns[0].Int64s, []int64{5, 4, 3}) {
		t.Errorf("result = %v", out.Columns[0].Int64s)
	}
}

func TestQ1MatchesReference(t *testing.T) {
	src, data := liSource(t, 0.002)
	cat := Catalog{"lineitem": src}
	out, err := Execute(q1Plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	ref := tpch.Q1Reference(data)
	if out.NumRows() != len(ref) {
		t.Fatalf("groups = %d, want %d", out.NumRows(), len(ref))
	}
	for i, r := range ref {
		if out.Column("l_returnflag").Int64s[i] != r.ReturnFlag ||
			out.Column("l_linestatus").Int64s[i] != r.LineStatus {
			t.Errorf("row %d keys mismatch", i)
		}
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"sum_qty", out.Column("sum_qty").Float64s[i], r.SumQty},
			{"sum_base_price", out.Column("sum_base_price").Float64s[i], r.SumBasePrice},
			{"sum_disc_price", out.Column("sum_disc_price").Float64s[i], r.SumDiscPrice},
			{"sum_charge", out.Column("sum_charge").Float64s[i], r.SumCharge},
			{"avg_qty", out.Column("avg_qty").Float64s[i], r.AvgQty},
			{"avg_price", out.Column("avg_price").Float64s[i], r.AvgPrice},
			{"avg_disc", out.Column("avg_disc").Float64s[i], r.AvgDisc},
		}
		for _, ch := range checks {
			if math.Abs(ch.got-ch.want) > 1e-6*math.Max(1, math.Abs(ch.want)) {
				t.Errorf("row %d %s = %v, want %v", i, ch.name, ch.got, ch.want)
			}
		}
		if out.Column("count_order").Int64s[i] != r.Count {
			t.Errorf("row %d count = %d, want %d", i, out.Column("count_order").Int64s[i], r.Count)
		}
	}
}

func TestQ6MatchesReference(t *testing.T) {
	src, data := liSource(t, 0.002)
	out, err := Execute(q6Plan(), Catalog{"lineitem": src})
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	got := out.Column("revenue").Float64s[0]
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("Q6 = %v, want %v", got, want)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	cat := Catalog{"t": NewMemSource(schema)}
	plan := &AggregatePlan{
		Aggs: []AggSpec{{Func: AggCount, Name: "n"}, {Func: AggSum, Arg: Col("x"), Name: "s"}},
		In:   &ScanPlan{Table: "t"},
	}
	out, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Column("n").Int64s[0] != 0 {
		t.Errorf("empty aggregate = %v rows, n=%v", out.NumRows(), out.Column("n"))
	}
}

func TestOptimizePushesFilterAndProjection(t *testing.T) {
	src, _ := liSource(t, 0.001)
	cat := Catalog{"lineitem": src}
	opt, err := Optimize(q6Plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	// The filter must have been folded into the scan.
	var scan *ScanPlan
	for n := opt; n != nil; n = n.Child() {
		if s, ok := n.(*ScanPlan); ok {
			scan = s
		}
		if _, ok := n.(*FilterPlan); ok {
			t.Error("FilterPlan survived push-down")
		}
	}
	if scan == nil {
		t.Fatal("no scan in optimized plan")
	}
	if scan.Filter == nil {
		t.Error("scan has no pushed filter")
	}
	// Q6 touches 4 columns; the projection must be restricted to them.
	want := []string{"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"}
	if !reflect.DeepEqual(scan.Projection, want) {
		t.Errorf("projection = %v, want %v", scan.Projection, want)
	}
	// Prune predicates must include the shipdate range.
	foundLo, foundHi := false, false
	for _, p := range scan.Prune {
		if p.Column == "l_shipdate" && p.Min == float64(tpch.Q6ShipDateLo) {
			foundLo = true
		}
		if p.Column == "l_shipdate" && p.Max == float64(tpch.Q6ShipDateHi) {
			foundHi = true
		}
	}
	if !foundLo || !foundHi {
		t.Errorf("prune predicates = %+v missing shipdate range", scan.Prune)
	}
}

func TestOptimizedPlanSameResult(t *testing.T) {
	src, data := liSource(t, 0.002)
	cat := Catalog{"lineitem": src}
	opt, err := Optimize(q6Plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("optimized Q6 = %v, want %v", got, want)
	}
}

func TestExtractPrunePredicatesMirrored(t *testing.T) {
	schema := tpch.Schema()
	// const <= col form must mirror into col >= const.
	pred := NewBin(OpLE, ConstInt(100), Col("l_shipdate"))
	ps := ExtractPrunePredicates(pred, schema)
	if len(ps) != 1 || ps[0].Min != 100 || !math.IsInf(ps[0].Max, 1) {
		t.Errorf("mirrored predicate = %+v", ps)
	}
	// Equality pins both bounds.
	ps = ExtractPrunePredicates(NewBin(OpEQ, Col("l_shipdate"), ConstInt(5)), schema)
	if len(ps) != 1 || ps[0].Min != 5 || ps[0].Max != 5 {
		t.Errorf("eq predicate = %+v", ps)
	}
	// Non-column comparisons contribute nothing.
	ps = ExtractPrunePredicates(NewBin(OpLT, NewBin(OpAdd, Col("a"), ConstInt(1)), ConstInt(5)), schema)
	if len(ps) != 0 {
		t.Errorf("complex predicate produced %+v", ps)
	}
}

func TestSplitDistributedAggEquivalence(t *testing.T) {
	// The fundamental distributed-correctness property: running the worker
	// partial plan over any partitioning of the input, concatenating, and
	// running the driver plan gives the same answer as single-node.
	src, data := liSource(t, 0.002)
	cat := Catalog{"lineitem": src}

	for _, q := range []Plan{q1Plan(), q6Plan()} {
		single, err := Execute(q, cat)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := SplitDistributed(q)
		if err != nil {
			t.Fatal(err)
		}
		// Partition input into 7 "files", run the worker plan on each.
		var results []*columnar.Chunk
		for _, f := range tpch.SplitFiles(data, 7) {
			wcat := Catalog{"lineitem": NewMemSource(tpch.Schema(), f)}
			r, err := Execute(dist.Worker, wcat)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, r)
		}
		ws, err := dist.Worker.OutSchema()
		if err != nil {
			t.Fatal(err)
		}
		dcat := Catalog{WorkerResultTable: NewMemSource(ws, results...)}
		merged, err := Execute(dist.Driver, dcat)
		if err != nil {
			t.Fatal(err)
		}
		if merged.NumRows() != single.NumRows() {
			t.Fatalf("distributed rows = %d, single = %d", merged.NumRows(), single.NumRows())
		}
		for j := range single.Columns {
			for i := 0; i < single.NumRows(); i++ {
				a, b := single.Columns[j].Float64At(i), merged.Columns[j].Float64At(i)
				if math.Abs(a-b) > 1e-6*math.Max(1, math.Abs(a)) {
					t.Errorf("col %d row %d: single %v != distributed %v", j, i, a, b)
				}
			}
		}
	}
}

func TestLpqSourceWithPruning(t *testing.T) {
	data := tpch.Gen{SF: 0.002, Seed: 5}.Generate()
	raw, err := lpq.WriteFile(tpch.Schema(), lpq.WriterOptions{RowGroupRows: 1000}, data)
	if err != nil {
		t.Fatal(err)
	}
	r, err := lpq.OpenReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"lineitem": &LpqSource{Reader: r}}
	opt, err := Optimize(q6Plan(), cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Execute(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	if got := out.Column("revenue").Float64s[0]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("lpq Q6 = %v, want %v", got, want)
	}
}

func TestExplainRendersTree(t *testing.T) {
	s := Explain(q1Plan())
	for _, want := range []string{"OrderBy", "Aggregate", "Filter", "Scan lineitem"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain missing %q:\n%s", want, s)
		}
	}
}

// Property: filter then concatenate equals concatenate then filter.
func TestPropertyFilterDistributesOverChunks(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "x", Type: columnar.Int64})
	f := func(vals []int64, cut int64, splitRaw uint8) bool {
		c := columnar.NewChunk(schema, len(vals))
		c.Columns[0].Int64s = append(c.Columns[0].Int64s, vals...)
		pred := NewBin(OpLT, Col("x"), ConstInt(cut))
		whole, err := Execute(&FilterPlan{Pred: pred, In: &ScanPlan{Table: "t"}},
			Catalog{"t": NewMemSource(schema, c)})
		if err != nil {
			return false
		}
		n := int(splitRaw)%5 + 2
		parts := tpch.SplitFiles(c, n)
		split, err := Execute(&FilterPlan{Pred: pred, In: &ScanPlan{Table: "t"}},
			Catalog{"t": NewMemSource(schema, parts...)})
		if err != nil {
			return false
		}
		return reflect.DeepEqual(whole.Columns[0].Int64s, split.Columns[0].Int64s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SUM/COUNT/MIN/MAX over random data match a straightforward
// scalar implementation.
func TestPropertyAggregatesMatchScalar(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	f := func(keys []uint8, seedRaw int64) bool {
		if len(keys) == 0 {
			return true
		}
		c := columnar.NewChunk(schema, len(keys))
		want := map[int64]*struct {
			sum      float64
			n        int64
			min, max float64
		}{}
		for i, kr := range keys {
			k := int64(kr % 4)
			v := float64(int8(kr)) * 1.25
			c.Columns[0].AppendInt64(k)
			c.Columns[1].AppendFloat64(v)
			w := want[k]
			if w == nil {
				w = &struct {
					sum      float64
					n        int64
					min, max float64
				}{min: v, max: v}
				want[k] = w
			}
			w.sum += v
			w.n++
			if v < w.min {
				w.min = v
			}
			if v > w.max {
				w.max = v
			}
			_ = i
		}
		plan := &AggregatePlan{
			GroupBy: []string{"k"},
			Aggs: []AggSpec{
				{Func: AggSum, Arg: Col("v"), Name: "s"},
				{Func: AggCount, Name: "n"},
				{Func: AggMin, Arg: Col("v"), Name: "lo"},
				{Func: AggMax, Arg: Col("v"), Name: "hi"},
			},
			In: &ScanPlan{Table: "t"},
		}
		out, err := Execute(plan, Catalog{"t": NewMemSource(schema, c)})
		if err != nil {
			return false
		}
		if out.NumRows() != len(want) {
			return false
		}
		for i := 0; i < out.NumRows(); i++ {
			k := out.Column("k").Int64s[i]
			w := want[k]
			if w == nil {
				return false
			}
			if math.Abs(out.Column("s").Float64s[i]-w.sum) > 1e-9 ||
				out.Column("n").Int64s[i] != w.n ||
				out.Column("lo").Float64s[i] != w.min ||
				out.Column("hi").Float64s[i] != w.max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
