package engine

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"lambada/internal/columnar"
	"lambada/internal/lpq"
)

// joinFixture builds a many-chunk probe table and a build table exercising
// a given key layout.
type joinFixture struct {
	name string
	cat  Catalog
	plan func() Plan
}

// chunked splits rows into chunks of the given size.
func chunked(schema *columnar.Schema, c *columnar.Chunk, rowsPerChunk int) *MemSource {
	var chunks []*columnar.Chunk
	for lo := 0; lo < c.NumRows(); lo += rowsPerChunk {
		hi := lo + rowsPerChunk
		if hi > c.NumRows() {
			hi = c.NumRows()
		}
		chunks = append(chunks, c.Slice(lo, hi))
	}
	return NewMemSource(schema, chunks...)
}

// makeProbe builds a probe table: k cycles 0..keyMod-1 (with optional
// sparse spreading), k2 cycles 0..6, v is a float payload.
func makeProbe(rows, keyMod int, spread int64) *columnar.Chunk {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "k2", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	c := columnar.NewChunk(schema, rows)
	for i := 0; i < rows; i++ {
		c.Columns[0].AppendInt64(int64(i%keyMod) * spread)
		c.Columns[1].AppendInt64(int64(i % 7))
		c.Columns[2].AppendFloat64(float64(i) * 0.125)
	}
	return c
}

// makeBuild builds a build table with dupFactor rows per key (duplicate
// build keys → multiple matches per probe row).
func makeBuild(keys []int64, dupFactor int, withK2 bool) *columnar.Chunk {
	fields := []columnar.Field{
		{Name: "bk", Type: columnar.Int64},
	}
	if withK2 {
		fields = append(fields, columnar.Field{Name: "bk2", Type: columnar.Int64})
	}
	fields = append(fields, columnar.Field{Name: "payload", Type: columnar.Int64})
	schema := columnar.NewSchema(fields...)
	c := columnar.NewChunk(schema, len(keys)*dupFactor)
	row := int64(0)
	for _, k := range keys {
		for d := 0; d < dupFactor; d++ {
			col := 0
			c.Columns[col].AppendInt64(k)
			col++
			if withK2 {
				c.Columns[col].AppendInt64(row % 7)
				col++
			}
			c.Columns[col].AppendInt64(1000 + row)
			row++
		}
	}
	return c
}

func joinFixtures() []joinFixture {
	probeSchema := makeProbe(1, 1, 1).Schema

	fixtures := []joinFixture{}

	// Duplicate build keys, dense int64 mode (keys 0..19, contiguous).
	denseKeys := make([]int64, 20)
	for i := range denseKeys {
		denseKeys[i] = int64(i)
	}
	fixtures = append(fixtures, joinFixture{
		name: "dup-keys-dense",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(5000, 25, 1), 400),
			"build": NewMemSource(makeBuild(denseKeys, 3, false).Schema, makeBuild(denseKeys, 3, false)),
		},
		plan: func() Plan {
			return &JoinPlan{
				Left:    &ScanPlan{Table: "probe"},
				Right:   &ScanPlan{Table: "build"},
				LeftKey: "k", RightKey: "bk",
			}
		},
	})

	// Sparse int64 keys force the open-addressing mode (spread defeats the
	// dense-span heuristic).
	sparseKeys := make([]int64, 40)
	for i := range sparseKeys {
		sparseKeys[i] = int64(i) * 1_000_000_007
	}
	fixtures = append(fixtures, joinFixture{
		name: "sparse-int64-openaddressing",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(5000, 40, 1_000_000_007), 300),
			"build": NewMemSource(makeBuild(sparseKeys, 2, false).Schema, makeBuild(sparseKeys, 2, false)),
		},
		plan: func() Plan {
			return &JoinPlan{
				Left:    &ScanPlan{Table: "probe"},
				Right:   &ScanPlan{Table: "build"},
				LeftKey: "k", RightKey: "bk",
			}
		},
	})

	// Empty build side: every probe row misses.
	fixtures = append(fixtures, joinFixture{
		name: "empty-build",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(2000, 10, 1), 250),
			"build": NewMemSource(makeBuild(nil, 1, false).Schema),
		},
		plan: func() Plan {
			return &JoinPlan{
				Left:    &ScanPlan{Table: "probe"},
				Right:   &ScanPlan{Table: "build"},
				LeftKey: "k", RightKey: "bk",
			}
		},
	})

	// Composite keys exercise the encoded-string mode.
	fixtures = append(fixtures, joinFixture{
		name: "composite-string-keys",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(4000, 12, 1), 350),
			"build": NewMemSource(makeBuild(denseKeys[:12], 2, true).Schema, makeBuild(denseKeys[:12], 2, true)),
		},
		plan: func() Plan {
			return &JoinPlan{
				Left:     &ScanPlan{Table: "probe"},
				Right:    &ScanPlan{Table: "build"},
				LeftKeys: []string{"k", "k2"}, RightKeys: []string{"bk", "bk2"},
			}
		},
	})

	// Join under an aggregate: the probe pipeline ends in the aggregation
	// breaker, with the gathered probe outputs pool-recycled there.
	fixtures = append(fixtures, joinFixture{
		name: "join-under-aggregate",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(6000, 25, 1), 500),
			"build": NewMemSource(makeBuild(denseKeys, 2, false).Schema, makeBuild(denseKeys, 2, false)),
		},
		plan: func() Plan {
			return &AggregatePlan{
				GroupBy: []string{"payload"},
				Aggs: []AggSpec{
					{Func: AggSum, Arg: Col("v"), Name: "s"},
					{Func: AggCount, Name: "n"},
				},
				In: &JoinPlan{
					Left:    &ScanPlan{Table: "probe"},
					Right:   &ScanPlan{Table: "build"},
					LeftKey: "k", RightKey: "bk",
				},
			}
		},
	})

	// Join feeding ORDER BY + LIMIT: sort and limit breakers stacked on the
	// probe pipeline.
	fixtures = append(fixtures, joinFixture{
		name: "join-orderby-limit",
		cat: Catalog{
			"probe": chunked(probeSchema, makeProbe(4000, 25, 1), 300),
			"build": NewMemSource(makeBuild(denseKeys, 2, false).Schema, makeBuild(denseKeys, 2, false)),
		},
		plan: func() Plan {
			return &LimitPlan{N: 77, In: &OrderByPlan{
				Keys: []OrderKey{{Column: "v", Desc: true}, {Column: "payload"}},
				In: &JoinPlan{
					Left: &FilterPlan{
						Pred: NewBin(OpLT, Col("k"), ConstInt(18)),
						In:   &ScanPlan{Table: "probe"},
					},
					Right:   &ScanPlan{Table: "build"},
					LeftKey: "k", RightKey: "bk",
				},
			}}
		},
	})

	return fixtures
}

// TestJoinParallelByteIdentity is the parallel-vs-serial identity suite of
// the join kernel: every fixture must produce byte-identical results at
// pipeline counts 1..8, at GOMAXPROCS 1 and 4 (run with -race in CI).
func TestJoinParallelByteIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, fx := range joinFixtures() {
			serial, err := Execute(fx.plan(), fx.cat)
			if err != nil {
				t.Fatalf("%s serial: %v", fx.name, err)
			}
			for _, pipelines := range []int{2, 4, 8} {
				par, err := ExecuteParallel(fx.plan(), fx.cat, ParallelConfig{Pipelines: pipelines})
				if err != nil {
					t.Fatalf("%s parallel(%d): %v", fx.name, pipelines, err)
				}
				t.Run(fmt.Sprintf("procs=%d/%s/pipelines=%d", procs, fx.name, pipelines), func(t *testing.T) {
					chunksIdentical(t, par, serial)
				})
			}
		}
	}
}

// TestJoinKeyTypeRejected is the regression test for the seed kernel's
// silent int64 assumption: bool and float keys — on either side — are
// rejected with ErrJoinKey at OutSchema (planning) time instead of
// building a corrupt table or panicking at run time.
func TestJoinKeyTypeRejected(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "f", Type: columnar.Float64},
		columnar.Field{Name: "b", Type: columnar.Bool},
	)
	right := columnar.NewSchema(
		columnar.Field{Name: "rk", Type: columnar.Int64},
		columnar.Field{Name: "rf", Type: columnar.Float64},
		columnar.Field{Name: "rb", Type: columnar.Bool},
	)
	cat := Catalog{
		"l": NewMemSource(schema, columnar.NewChunk(schema, 0)),
		"r": NewMemSource(right, columnar.NewChunk(right, 0)),
	}
	cases := []struct {
		name      string
		lk, rk    string
		wantTyped bool
	}{
		{"float-right", "k", "rf", true},
		{"bool-right", "k", "rb", true},
		{"float-left", "f", "rk", true},
		{"bool-left", "b", "rk", true},
		{"int64-ok", "k", "rk", false},
	}
	for _, tc := range cases {
		j := &JoinPlan{
			Left:    &ScanPlan{Table: "l"},
			Right:   &ScanPlan{Table: "r"},
			LeftKey: tc.lk, RightKey: tc.rk,
		}
		if err := Resolve(j, cat); err != nil {
			t.Fatal(err)
		}
		_, err := j.OutSchema()
		if tc.wantTyped {
			if !errors.Is(err, ErrJoinKey) {
				t.Errorf("%s: OutSchema err = %v, want ErrJoinKey", tc.name, err)
			}
			// The executor surfaces the same typed error instead of
			// panicking at build time.
			if _, err := Execute(j, cat); !errors.Is(err, ErrJoinKey) {
				t.Errorf("%s: Execute err = %v, want ErrJoinKey", tc.name, err)
			}
			if _, err := ExecuteParallel(j, cat, ParallelConfig{Pipelines: 4}); !errors.Is(err, ErrJoinKey) {
				t.Errorf("%s: ExecuteParallel err = %v, want ErrJoinKey", tc.name, err)
			}
		} else if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
	// Mismatched key-list lengths.
	bad := &JoinPlan{
		Left:     &ScanPlan{Table: "l"},
		Right:    &ScanPlan{Table: "r"},
		LeftKeys: []string{"k"}, RightKeys: []string{"rk", "rb"},
	}
	if err := Resolve(bad, cat); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.OutSchema(); err == nil {
		t.Error("mismatched key lists accepted")
	}
}

// countingSource counts how many chunks a scan actually yielded — the
// limit-pushdown regression instrument.
type countingSource struct {
	schema  *columnar.Schema
	chunks  []*columnar.Chunk
	yielded int
}

func (s *countingSource) Schema() (*columnar.Schema, error) { return s.schema, nil }

func (s *countingSource) Scan(proj []string, _ []lpq.Predicate, yield func(*columnar.Chunk) error) error {
	for _, c := range s.chunks {
		s.yielded++
		if err := yield(c); err != nil {
			return err
		}
	}
	return nil
}

// TestLimitStopsScanEarly is the regression test for the old LimitPlan
// path that fully materialized its child before slicing: a LIMIT over a
// streamable pipeline must stop the scan once N rows arrived.
func TestLimitStopsScanEarly(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "k", Type: columnar.Int64})
	var chunks []*columnar.Chunk
	for i := 0; i < 100; i++ {
		c := columnar.NewChunk(schema, 10)
		for j := 0; j < 10; j++ {
			c.Columns[0].AppendInt64(int64(i*10 + j))
		}
		chunks = append(chunks, c)
	}
	src := &countingSource{schema: schema, chunks: chunks}
	cat := Catalog{"t": src}
	plan := &LimitPlan{N: 25, In: &ScanPlan{Table: "t"}}
	out, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 25 {
		t.Fatalf("rows = %d, want 25", out.NumRows())
	}
	for i := 0; i < 25; i++ {
		if out.Column("k").Int64s[i] != int64(i) {
			t.Fatalf("row %d = %d, want %d", i, out.Column("k").Int64s[i], i)
		}
	}
	if src.yielded >= 100 {
		t.Errorf("limit did not stop the scan: %d/100 chunks yielded", src.yielded)
	}
	if src.yielded != 3 {
		t.Errorf("serial limit yielded %d chunks, want 3 (25 rows / 10 per chunk)", src.yielded)
	}
}

// TestLimitParallelIdentity checks the streaming limit stays byte-identical
// under parallel execution (where morsels complete out of order).
func TestLimitParallelIdentity(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Float64},
	)
	var chunks []*columnar.Chunk
	for i := 0; i < 64; i++ {
		c := columnar.NewChunk(schema, 16)
		for j := 0; j < 16; j++ {
			c.Columns[0].AppendInt64(int64(i*16 + j))
			c.Columns[1].AppendFloat64(float64(i) * 0.5)
		}
		chunks = append(chunks, c)
	}
	mk := func() Plan {
		return &LimitPlan{N: 100, In: &FilterPlan{
			Pred: NewBin(OpGE, Col("k"), ConstInt(50)),
			In:   &ScanPlan{Table: "t"},
		}}
	}
	cat := Catalog{"t": NewMemSource(schema, chunks...)}
	serial, err := Execute(mk(), cat)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumRows() != 100 {
		t.Fatalf("serial rows = %d", serial.NumRows())
	}
	for _, pipelines := range []int{2, 4, 8} {
		par, err := ExecuteParallel(mk(), cat, ParallelConfig{Pipelines: pipelines})
		if err != nil {
			t.Fatal(err)
		}
		chunksIdentical(t, par, serial)
	}
}
