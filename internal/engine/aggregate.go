package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"lambada/internal/columnar"
)

// aggBuilder accumulates group-by state over chunks in struct-of-arrays
// form: groups are dense ordinals into per-aggregate value arrays, and each
// chunk is folded in two vectorized passes — first rows are mapped to group
// ordinals (selection-vector style), then every aggregate runs a tight
// per-column loop over that mapping. No per-row hashing on the common
// paths, no per-row allocation anywhere.
//
// It is the shared kernel of the serial aggregate and of the morsel-driven
// parallel aggregate: both compute one partial builder per chunk and fold
// the partials into a master builder in chunk-sequence order (mergeFrom),
// so float sums — the only non-associative aggregate — combine in exactly
// the same order no matter how many goroutines did the per-chunk work. That
// is what makes parallel aggregation byte-identical to the serial path.
//
// Group addressing picks the cheapest workable scheme per chunk: a dense
// direct-index table when the int64 key columns span a narrow range, a
// map[int64] for a single wide key (no per-row key serialization, no string
// allocation), and an encoded-string map only for the general multi-key
// fallback.
type aggBuilder struct {
	p      *AggregatePlan
	keyIdx []int
	fast   bool // single key, addressed as int64

	fgroups map[int64]int32  // fast path: key → group ordinal
	groups  map[string]int32 // general path: encoded keys → group ordinal

	// Per-group state, ordinal-indexed.
	keyVals []int64 // group keys, flat, stride len(keyIdx)
	seqs    []uint64
	rows    []int
	counts  []int64 // per group; every aggregate shares the row count
	// Per aggregate, per group.
	sums  [][]float64
	isums [][]int64
	mins  [][]float64
	maxs  [][]float64

	keyBuf    []byte    // reusable composite-key scratch
	args      []argView // reusable per-chunk argument views
	rowGroups []int32   // reusable row → group-ordinal mapping
}

// argView is one aggregate argument's typed value slices, extracted once
// per chunk so the per-row loops read values directly.
type argView struct {
	f  []float64
	i  []int64
	bl []bool
}

// newAggBuilder validates the plan against the input schema and returns an
// empty builder.
func newAggBuilder(p *AggregatePlan, inSchema *columnar.Schema) (*aggBuilder, error) {
	keyIdx := make([]int, len(p.GroupBy))
	for i, g := range p.GroupBy {
		keyIdx[i] = inSchema.Index(g)
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("engine: group key %q missing", g)
		}
		if t := inSchema.Fields[keyIdx[i]].Type; t == columnar.Float64 {
			return nil, fmt.Errorf("engine: float group key %q not supported", g)
		}
	}
	b := &aggBuilder{
		p:      p,
		keyIdx: keyIdx,
		fast:   len(keyIdx) == 1,
		sums:   make([][]float64, len(p.Aggs)),
		isums:  make([][]int64, len(p.Aggs)),
		mins:   make([][]float64, len(p.Aggs)),
		maxs:   make([][]float64, len(p.Aggs)),
	}
	if b.fast {
		b.fgroups = make(map[int64]int32)
	} else if len(keyIdx) > 1 {
		b.groups = make(map[string]int32)
	}
	return b, nil
}

func (b *aggBuilder) numGroups() int { return len(b.counts) }

// addGroup appends a new group and returns its ordinal. Min/max start at
// the infinities; every group has at least one row, so they collapse to the
// true extrema in the aggregate pass.
func (b *aggBuilder) addGroup(seq uint64, row int) int32 {
	g := int32(len(b.counts))
	b.seqs = append(b.seqs, seq)
	b.rows = append(b.rows, row)
	b.counts = append(b.counts, 0)
	for ai := range b.p.Aggs {
		b.sums[ai] = append(b.sums[ai], 0)
		b.isums[ai] = append(b.isums[ai], 0)
		b.mins[ai] = append(b.mins[ai], math.Inf(1))
		b.maxs[ai] = append(b.maxs[ai], math.Inf(-1))
	}
	return g
}

// addChunk folds one chunk into the builder. seq is the chunk's position in
// the serial delivery order; it only determines output ordering.
func (b *aggBuilder) addChunk(c *columnar.Chunk, seq uint64) error {
	n := c.NumRows()
	if n == 0 {
		return nil
	}
	// Evaluate aggregate arguments once per chunk (vectorized) and pull
	// out their typed slices.
	args := b.args[:0]
	for _, a := range b.p.Aggs {
		var view argView
		if a.Arg != nil {
			v, err := a.Arg.Eval(c)
			if err != nil {
				return err
			}
			switch v.Type {
			case columnar.Float64:
				view.f = v.Float64s
			case columnar.Int64:
				view.i = v.Int64s
			default:
				view.bl = v.Bools
			}
		}
		args = append(args, view)
	}
	b.args = args

	// Pass 1: map every row to its group ordinal.
	if cap(b.rowGroups) < n {
		b.rowGroups = make([]int32, n)
	}
	rg := b.rowGroups[:n]
	b.mapRows(c, n, seq, rg)

	// Pass 2: one tight loop per aggregate over the row → group mapping.
	counts := b.counts
	for _, g := range rg {
		counts[g]++
	}
	for ai := range args {
		av := &args[ai]
		sums, isums := b.sums[ai], b.isums[ai]
		mins, maxs := b.mins[ai], b.maxs[ai]
		switch {
		case av.f != nil:
			for i, g := range rg {
				v := av.f[i]
				sums[g] += v
				isums[g] += int64(v)
				if v < mins[g] {
					mins[g] = v
				}
				if v > maxs[g] {
					maxs[g] = v
				}
			}
		case av.i != nil:
			for i, g := range rg {
				x := av.i[i]
				v := float64(x)
				sums[g] += v
				isums[g] += x
				if v < mins[g] {
					mins[g] = v
				}
				if v > maxs[g] {
					maxs[g] = v
				}
			}
		case av.bl != nil:
			for i, g := range rg {
				var v float64
				if av.bl[i] {
					v = 1
					isums[g]++
				}
				sums[g] += v
				if v < mins[g] {
					mins[g] = v
				}
				if v > maxs[g] {
					maxs[g] = v
				}
			}
		default:
			// COUNT(*): no argument; zeros still bound min/max like the
			// row-at-a-time executor did.
			for _, g := range rg {
				if 0 < mins[g] {
					mins[g] = 0
				}
				if 0 > maxs[g] {
					maxs[g] = 0
				}
			}
		}
	}
	return nil
}

// mapRows fills rg with each row's group ordinal, creating groups on first
// sight.
func (b *aggBuilder) mapRows(c *columnar.Chunk, n int, seq uint64, rg []int32) {
	// Global aggregate: every row lands in group 0.
	if len(b.keyIdx) == 0 {
		if b.numGroups() == 0 {
			b.addGroup(seq, 0)
		}
		for i := range rg {
			rg[i] = 0
		}
		return
	}

	// Dense path: a fresh builder (one chunk per builder is the normal
	// contract) whose int64 key columns together span a narrow range gets
	// a direct-index table — no key serialization, no hashing. Slots hold
	// ordinal+1 so the zeroed table needs no initialization.
	if b.numGroups() == 0 {
		if dense, los, strides, ok := b.denseTable(c, n); ok {
			if b.fast {
				keys := c.Columns[b.keyIdx[0]].Int64s
				lo := los[0]
				for i, k := range keys {
					slot := k - lo
					g := dense[slot]
					if g == 0 {
						g = b.addGroup(seq, i) + 1
						b.keyVals = append(b.keyVals, k)
						b.fgroups[k] = g - 1
						dense[slot] = g
					}
					rg[i] = g - 1
				}
				return
			}
			for i := 0; i < n; i++ {
				slot := int64(0)
				for j, ki := range b.keyIdx {
					slot += (c.Columns[ki].Int64s[i] - los[j]) * strides[j]
				}
				g := dense[slot]
				if g == 0 {
					g = b.addGroup(seq, i) + 1
					for _, ki := range b.keyIdx {
						b.keyVals = append(b.keyVals, c.Columns[ki].Int64s[i])
					}
					b.index(g - 1)
					dense[slot] = g
				}
				rg[i] = g - 1
			}
			return
		}
	}

	if b.fast {
		keyCol := c.Columns[b.keyIdx[0]]
		for i := 0; i < n; i++ {
			k := keyCol.Int64At(i)
			g, ok := b.fgroups[k]
			if !ok {
				g = b.addGroup(seq, i)
				b.keyVals = append(b.keyVals, k)
				b.fgroups[k] = g
			}
			rg[i] = g
		}
		return
	}

	for i := 0; i < n; i++ {
		b.keyBuf = b.keyBuf[:0]
		for _, ki := range b.keyIdx {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], uint64(c.Columns[ki].Int64At(i)))
			b.keyBuf = append(b.keyBuf, tmp[:]...)
		}
		g, ok := b.groups[string(b.keyBuf)]
		if !ok {
			g = b.addGroup(seq, i)
			for _, ki := range b.keyIdx {
				b.keyVals = append(b.keyVals, c.Columns[ki].Int64At(i))
			}
			b.groups[string(b.keyBuf)] = g
		}
		rg[i] = g
	}
}

// denseTable decides whether the chunk's key columns admit direct-index
// grouping: all keys Int64, and the product of their value spans at most
// 4× the row count (and < 2^16, bounding the table). It returns the empty
// table, per-key minima and row-major strides.
func (b *aggBuilder) denseTable(c *columnar.Chunk, n int) ([]int32, []int64, []int64, bool) {
	const maxSlots = 1 << 16
	los := make([]int64, len(b.keyIdx))
	spans := make([]int64, len(b.keyIdx))
	for j, ki := range b.keyIdx {
		col := c.Columns[ki]
		if col.Type != columnar.Int64 {
			return nil, nil, nil, false
		}
		lo, hi := col.Int64s[0], col.Int64s[0]
		for _, k := range col.Int64s {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if uint64(hi)-uint64(lo) >= maxSlots {
			return nil, nil, nil, false
		}
		los[j], spans[j] = lo, hi-lo+1
	}
	slots := int64(1)
	for _, s := range spans {
		if slots *= s; slots >= maxSlots {
			return nil, nil, nil, false
		}
	}
	if slots > 4*int64(n) {
		return nil, nil, nil, false
	}
	strides := make([]int64, len(spans))
	stride := int64(1)
	for j := len(spans) - 1; j >= 0; j-- {
		strides[j] = stride
		stride *= spans[j]
	}
	return make([]int32, slots), los, strides, true
}

// index registers group g in the hash table (the dense path keeps the map
// coherent so a builder stays usable for further, non-dense chunks).
func (b *aggBuilder) index(g int32) {
	nk := len(b.keyIdx)
	keys := b.keyVals[int(g)*nk : int(g+1)*nk]
	if b.fast {
		b.fgroups[keys[0]] = g
		return
	}
	b.keyBuf = b.keyBuf[:0]
	for _, k := range keys {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(k))
		b.keyBuf = append(b.keyBuf, tmp[:]...)
	}
	b.groups[string(b.keyBuf)] = g
}

// lookup finds the master ordinal for the o-side group og, or -1.
func (b *aggBuilder) lookup(o *aggBuilder, og int32) int32 {
	nk := len(b.keyIdx)
	if nk == 0 {
		if b.numGroups() == 0 {
			return -1
		}
		return 0
	}
	keys := o.keyVals[int(og)*nk : int(og+1)*nk]
	if b.fast {
		if g, ok := b.fgroups[keys[0]]; ok {
			return g
		}
		return -1
	}
	b.keyBuf = b.keyBuf[:0]
	for _, k := range keys {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(k))
		b.keyBuf = append(b.keyBuf, tmp[:]...)
	}
	if g, ok := b.groups[string(b.keyBuf)]; ok {
		return g
	}
	return -1
}

// mergeFrom folds another builder's partial groups into b, in o's
// first-seen order. Both builders must come from the same plan; o must not
// be used afterwards. Callers fold partials in chunk-sequence order, which
// keeps float summation order identical to the serial executor's.
func (b *aggBuilder) mergeFrom(o *aggBuilder) {
	nk := len(b.keyIdx)
	for og := int32(0); og < int32(o.numGroups()); og++ {
		g := b.lookup(o, og)
		if g < 0 {
			g = b.addGroup(o.seqs[og], o.rows[og])
			b.keyVals = append(b.keyVals, o.keyVals[int(og)*nk:int(og+1)*nk]...)
			if nk > 0 {
				b.index(g)
			}
		} else if o.seqs[og] < b.seqs[g] || (o.seqs[og] == b.seqs[g] && o.rows[og] < b.rows[g]) {
			b.seqs[g], b.rows[g] = o.seqs[og], o.rows[og]
		}
		b.counts[g] += o.counts[og]
		for ai := range b.p.Aggs {
			b.sums[ai][g] += o.sums[ai][og]
			b.isums[ai][g] += o.isums[ai][og]
			if o.mins[ai][og] < b.mins[ai][g] {
				b.mins[ai][g] = o.mins[ai][og]
			}
			if o.maxs[ai][og] > b.maxs[ai][g] {
				b.maxs[ai][g] = o.maxs[ai][og]
			}
		}
	}
}

// finalize emits the result chunk, groups ordered by first-seen position in
// the input stream (identical to the serial executor's output).
func (b *aggBuilder) finalize(outSchema *columnar.Schema) (*columnar.Chunk, error) {
	order := make([]int32, b.numGroups())
	for g := range order {
		order[g] = int32(g)
	}
	sort.Slice(order, func(i, j int) bool {
		gi, gj := order[i], order[j]
		if b.seqs[gi] != b.seqs[gj] {
			return b.seqs[gi] < b.seqs[gj]
		}
		return b.rows[gi] < b.rows[gj]
	})

	// A global aggregate over empty input still yields one row of zeros
	// (COUNT = 0), matching SQL semantics.
	if len(b.p.GroupBy) == 0 && len(order) == 0 {
		g := b.addGroup(0, 0)
		for ai := range b.p.Aggs {
			b.mins[ai][g] = 0
			b.maxs[ai][g] = 0
		}
		order = append(order, g)
	}

	nk := len(b.p.GroupBy)
	out := columnar.NewChunk(outSchema, len(order))
	for _, g := range order {
		col := 0
		for j := 0; j < nk; j++ {
			out.Columns[col].AppendInt64(b.keyVals[int(g)*nk+j])
			col++
		}
		for ai, a := range b.p.Aggs {
			switch a.Func {
			case AggCount:
				out.Columns[col].AppendInt64(b.counts[g])
			case AggSum:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(b.isums[ai][g])
				} else {
					out.Columns[col].AppendFloat64(b.sums[ai][g])
				}
			case AggAvg:
				if b.counts[g] == 0 {
					out.Columns[col].AppendFloat64(math.NaN())
				} else {
					out.Columns[col].AppendFloat64(b.sums[ai][g] / float64(b.counts[g]))
				}
			case AggMin:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(int64(b.mins[ai][g]))
				} else {
					out.Columns[col].AppendFloat64(b.mins[ai][g])
				}
			case AggMax:
				if outSchema.Fields[col].Type == columnar.Int64 {
					out.Columns[col].AppendInt64(int64(b.maxs[ai][g]))
				} else {
					out.Columns[col].AppendFloat64(b.maxs[ai][g])
				}
			}
			col++
		}
	}
	return out, nil
}
