module lambada

go 1.22
