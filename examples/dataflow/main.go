// Dataflow example: the paper's Listing 1 expressed in the Go frontend —
//
//	data = lambada.from_parquet('s3://bucket/*.parquet')
//	             .filter(lambda x: x[1] >= 0.05)
//	             .map(lambda x: x[1] * x[2])
//	             .reduce(lambda x, y: x + y)
//
// The pipeline builds a logical plan; the same optimizer then pushes the
// filter and the projection into the S3 scan and splits the aggregation
// into worker partials and a driver merge.
package main

import (
	"fmt"
	"log"

	"lambada/internal/awssim/simenv"
	"lambada/internal/dataflow"
	"lambada/internal/driver"
	"lambada/internal/engine"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func main() {
	// Build the Listing 1 pipeline over named columns.
	pipeline := dataflow.FromTable("lineitem").
		Filter(dataflow.GE(dataflow.Col("l_discount"), dataflow.LitF(0.05))).
		Map([]string{"weighted"},
			dataflow.Mul(dataflow.Col("l_discount"), dataflow.Col("l_extendedprice"))).
		Reduce(dataflow.Sum(dataflow.Col("weighted"), "total"),
			dataflow.Count("n"))

	plan, err := pipeline.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("logical plan:")
	fmt.Print(engine.Explain(plan))

	// Deploy and run on the serverless fleet.
	dep := driver.NewLocal()
	d := driver.New(dep, simenv.NewImmediate(), driver.DefaultConfig())
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}
	data := tpch.Gen{SF: 0.005, Seed: 3}.Generate()
	files, err := d.UploadTable("demo", "lineitem", data, 8, lpq.WriterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	out, rep, err := d.RunPlan(plan, "lineitem", files)
	if err != nil {
		log.Fatal(err)
	}

	// Validate against a direct scalar computation.
	var want float64
	var wantN int64
	disc := data.Column("l_discount").Float64s
	price := data.Column("l_extendedprice").Float64s
	for i := range disc {
		if disc[i] >= 0.05 {
			want += disc[i] * price[i]
			wantN++
		}
	}
	got := out.Column("total").Float64s[0]
	fmt.Printf("\nsum(discount*price | discount >= 0.05) = %.4f (reference %.4f)\n", got, want)
	fmt.Printf("matching rows: %d (reference %d)\n", out.Column("n").Int64s[0], wantN)
	fmt.Printf("%d workers, cost $%.6f\n", rep.Workers, rep.TotalCost)
}
