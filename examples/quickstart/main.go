// Quickstart: install Lambada on a local (in-process) serverless
// deployment, upload a small table, and run a SQL query on the worker
// fleet. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"lambada/internal/awssim/simenv"
	"lambada/internal/driver"
	"lambada/internal/lpq"
	"lambada/internal/tpch"
)

func main() {
	// 1. A deployment bundles the serverless services (S3, Lambda, SQS) —
	//    NewLocal runs workers as goroutines with zero simulated latency.
	dep := driver.NewLocal()
	d := driver.New(dep, simenv.NewImmediate(), driver.DefaultConfig())

	// 2. Install: registers the worker function and the result queue.
	//    (The paper's Figure 2: installation happens once.)
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}

	// 3. Upload a table: TPC-H LINEITEM at a tiny scale factor, stored as
	//    four Parquet-like files in simulated S3.
	data := tpch.Gen{SF: 0.001, Seed: 1}.Generate()
	files, err := d.UploadTable("demo", "lineitem", data, 4,
		lpq.WriterOptions{Compression: lpq.Gzip})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d rows as %d files\n", data.NumRows(), len(files))

	// 4. Run a query. The driver optimizes the plan (selection and
	//    projection push-down), splits it into worker and driver scopes,
	//    invokes one worker per file, and merges the partial aggregates.
	out, rep, err := d.RunSQL(`
		SELECT l_returnflag, COUNT(*) AS n, AVG(l_quantity) AS avg_qty
		FROM lineitem
		WHERE l_shipdate >= DATE '1995-01-01'
		GROUP BY l_returnflag
		ORDER BY l_returnflag`, "lineitem", files)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < out.NumRows(); i++ {
		fmt.Printf("returnflag=%d  n=%-6d avg_qty=%.2f\n",
			out.Column("l_returnflag").Int64s[i],
			out.Column("n").Int64s[i],
			out.Column("avg_qty").Float64s[i])
	}
	fmt.Printf("\n%d workers, query cost $%.6f\n", rep.Workers, rep.TotalCost)
}
