// Exchange example: shuffles a table across serverless workers through S3 —
// the purely serverless exchange operator of §4.4. It runs the same workload
// with the basic quadratic algorithm and the two-level write-combining
// variant, showing the request-count reduction of Table 2 on real executed
// requests, then verifies every row landed at its hash partition.
package main

import (
	"fmt"
	"log"
	"sync"

	"lambada/internal/awssim/pricing"
	"lambada/internal/awssim/s3"
	"lambada/internal/awssim/simenv"
	"lambada/internal/columnar"
	"lambada/internal/exchange"
)

func main() {
	const workers = 16
	const rowsPerWorker = 1000

	schema := columnar.NewSchema(
		columnar.Field{Name: "key", Type: columnar.Int64},
		columnar.Field{Name: "value", Type: columnar.Float64},
	)

	for _, variant := range []exchange.Variant{
		{Levels: 1, WriteCombining: false},
		{Levels: 2, WriteCombining: true},
	} {
		meter := pricing.NewCostMeter()
		svc := s3.New(s3.Config{Meter: meter})
		// Bucket sharding (§4.4.1): spreading the file matrix over
		// pre-created buckets multiplies the S3 rate limit.
		buckets := []string{"shard-0", "shard-1", "shard-2", "shard-3"}
		for _, b := range buckets {
			svc.MustCreateBucket(b)
		}
		opts := exchange.DefaultOptions(variant, buckets...)

		// Each worker holds a slice of the table; after the exchange every
		// row lives at the worker that owns its hash partition.
		results := make([]*columnar.Chunk, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				input := columnar.NewChunk(schema, rowsPerWorker)
				for i := 0; i < rowsPerWorker; i++ {
					input.Columns[0].AppendInt64(int64(w*rowsPerWorker + i))
					input.Columns[1].AppendFloat64(float64(i))
				}
				wk := exchange.Worker{ID: w, P: workers, Client: s3.NewClient(svc, simenv.NewImmediate())}
				out, err := wk.Run(opts, input, "key")
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
				results[w] = out
			}()
		}
		wg.Wait()

		total := 0
		for w, out := range results {
			total += out.NumRows()
			for i := 0; i < out.NumRows(); i++ {
				if exchange.PartitionOf(out.Columns[0].Int64s[i], workers) != w {
					log.Fatalf("misrouted row at worker %d", w)
				}
			}
		}
		fmt.Printf("%-6s shuffled %d rows across %d workers\n", variant, total, workers)
		fmt.Printf("       S3 requests: %d reads, %d writes, %d lists (model: %.0f reads, %.0f writes)\n",
			meter.Count(pricing.LabelS3Read), meter.Count(pricing.LabelS3Write), meter.Count(pricing.LabelS3List),
			variant.Reads(workers), variant.Writes(workers))
		fmt.Printf("       request cost: %s\n\n", meter.Total())
	}
}
