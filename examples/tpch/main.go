// TPC-H example: runs Query 1 and Query 6 — the paper's two most scan-bound
// queries — on the simulated serverless fleet twice: once on the functional
// (goroutine) deployment to validate the answers against a reference
// implementation, and once on the discrete-event-simulated deployment with
// the calibrated AWS latency/bandwidth/pricing models, reporting interactive
// virtual-time latencies and per-query cost (the setting of Figures 10-12).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"lambada/internal/awssim/simenv"
	"lambada/internal/driver"
	"lambada/internal/lpq"
	"lambada/internal/simclock"
	"lambada/internal/tpch"
)

const q1 = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

const q6 = `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.0499999 AND 0.0700001 AND l_quantity < 24`

func main() {
	const sf = 0.01
	data := tpch.Gen{SF: sf, Seed: 7}.Generate()
	fmt.Printf("LINEITEM SF %g: %d rows\n\n", sf, data.NumRows())

	// ---- Functional run: validate correctness against the reference.
	dep := driver.NewLocal()
	d := driver.New(dep, simenv.NewImmediate(), driver.DefaultConfig())
	if err := d.Install(); err != nil {
		log.Fatal(err)
	}
	files, err := d.UploadTable("tpch", "lineitem", data, 16,
		lpq.WriterOptions{RowGroupRows: 8192, Compression: lpq.Gzip})
	if err != nil {
		log.Fatal(err)
	}

	out, rep, err := d.RunSQL(q1, "lineitem", files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1 (distributed):")
	ref := tpch.Q1Reference(data)
	for i, r := range ref {
		got := out.Column("sum_charge").Float64s[i]
		status := "OK"
		if math.Abs(got-r.SumCharge) > 1e-6*r.SumCharge {
			status = "MISMATCH"
		}
		fmt.Printf("  group(%d,%d): sum_charge=%.2f count=%d  [%s]\n",
			r.ReturnFlag, r.LineStatus, got, out.Column("count_order").Int64s[i], status)
	}
	fmt.Printf("  workers=%d cost=$%.6f\n\n", rep.Workers, rep.TotalCost)

	out6, _, err := d.RunSQL(q6, "lineitem", files)
	if err != nil {
		log.Fatal(err)
	}
	want := tpch.Q6Reference(data)
	fmt.Printf("Q6 revenue: %.4f (reference %.4f)\n\n", out6.Column("revenue").Float64s[0], want)

	// ---- DES run: virtual-time latency and cost under the AWS models.
	k := simclock.New()
	sdep := driver.NewSimulated(k, 11)
	k.Go("driver", func(p *simclock.Proc) {
		cfg := driver.DefaultConfig()
		cfg.PollInterval = 50 * time.Millisecond
		sd := driver.New(sdep, p, cfg)
		if err := sd.Install(); err != nil {
			log.Fatal(err)
		}
		srefs, err := sd.UploadTable("tpch", "lineitem", data, 16,
			lpq.WriterOptions{RowGroupRows: 8192, Compression: lpq.Gzip})
		if err != nil {
			log.Fatal(err)
		}
		for _, q := range []struct {
			name, sql string
		}{{"Q1", q1}, {"Q6", q6}} {
			_, rep, err := sd.RunSQL(q.sql, "lineitem", srefs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("DES %s: latency %v (invocation %v), %d workers (%d cold), cost $%.6f\n",
				q.name, rep.Duration.Round(time.Millisecond), rep.Invocation.Round(time.Millisecond),
				rep.Workers, rep.ColdWorkers, rep.TotalCost)
			p.Sleep(30 * time.Second) // think time between queries (Figure 2)
		}
	})
	k.Run()
}
